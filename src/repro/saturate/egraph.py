"""An e-graph over hash-consed KOLA terms.

An *e-graph* (equivalence graph) compactly represents a set of terms
closed under an equivalence relation: terms are broken into **e-nodes**
— one operator application whose children are **e-classes** (equivalence
classes of terms) rather than subterms — and equal terms share one
e-class.  Because an e-node's children are whole classes, a single
e-node stands for the *cross product* of its children's members: ``n``
e-nodes can represent exponentially many distinct terms, which is what
makes equality-saturation search affordable where naive BFS over whole
terms (``Engine.successors`` fan-out) re-derives the same subterm
variants once per enclosing context.

Hash-consing (:mod:`repro.core.terms`) makes the construction unusually
cheap here: structurally equal terms are already the same object, so
the term-to-class map is keyed by identity, congruence keys are O(1) to
build, and "is this term already represented?" is a dictionary probe.

The implementation follows the classic worklist-free formulation:

* a union-find over integer e-class ids (:meth:`EGraph.find`,
  :meth:`EGraph.merge`);
* a hashcons from canonical e-nodes ``(op, label, child class ids)`` to
  their e-class (:meth:`EGraph.add`);
* **congruence closure** by rebuild-to-fixpoint (:meth:`EGraph.rebuild`):
  after merges, e-nodes whose canonicalized keys collide force their
  classes to merge too, repeated until stable.

Every e-class also records a bounded set of **member terms** — actual
ground :class:`~repro.core.terms.Term` objects that were inserted into
the class.  The saturation driver rewrites these representatives (plus
one level of e-node recombinations, :meth:`EGraph.sample_terms`), and
extraction uses them as guaranteed-finite fallbacks even when merges
have made a class cyclic (``x = f(x)`` shapes arise naturally from
identity rules).

Diagnostics: :meth:`EGraph.represented_counts` computes how many
distinct terms each class stands for (saturating at a cap so cyclic
classes report "effectively infinite" instead of diverging), which the
saturation benchmark compares against naive-BFS materialization.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.terms import Term, _label_key
from repro.rewrite.pattern import canon

#: Saturation cap for represented-term counting: classes at or above the
#: cap (including cyclic classes, which represent infinitely many terms)
#: report exactly this value.
COUNT_CAP = 10 ** 18


def _node_key(op: str, label: Hashable,
              child_ids: tuple[int, ...]) -> tuple:
    """Congruence key of an e-node (labels normalized exactly like the
    term cons table, so ``False``/``0`` payloads never collide)."""
    if label is None or type(label) is str:
        return (op, label, child_ids)
    return (op, _label_key(label), child_ids)


class EClass:
    """One equivalence class: its e-nodes and member terms.

    ``nodes`` maps the congruence key (canonical at the last rebuild) to
    the e-node data ``(op, label, child class ids)``.  ``members`` holds
    the ground terms explicitly inserted into this class, bounded to the
    ``max_members`` smallest (ties broken by insertion order, so runs
    are deterministic).
    """

    __slots__ = ("nodes", "members")

    def __init__(self) -> None:
        self.nodes: dict[tuple, tuple[str, Hashable, tuple[int, ...]]] = {}
        self.members: dict[Term, int] = {}


class EGraph:
    """E-classes + union-find + congruence closure over interned terms."""

    def __init__(self, max_members_per_class: int = 8) -> None:
        self.max_members = max_members_per_class
        self._parent: list[int] = []
        self._classes: dict[int, EClass] = {}
        self._hashcons: dict[tuple, int] = {}
        self._term_class: dict[Term, int] = {}
        self._seq = 0          # member insertion counter (determinism)
        #: Total e-nodes ever hash-consed (the budget/benchmark measure;
        #: congruence merges never decrement it).
        self.enodes_allocated = 0
        self.merges = 0
        #: Classes changed (created, merged, or grown by an e-node or
        #: member) since the last :meth:`clear_dirty` — the incremental
        #: e-matching frontier.  Ids may be stale (absorbed by later
        #: merges); readers normalize through :meth:`find`.
        self._dirty: set[int] = set()
        #: child class id -> ids of classes owning an e-node that
        #: references it (the upward edges :meth:`closure_up` walks).
        #: Keys and values may be stale; normalized on read.
        self._parents: dict[int, set[int]] = {}

    # -- union-find ---------------------------------------------------------

    def find(self, cid: int) -> int:
        """Canonical id of ``cid``'s class (with path compression)."""
        parent = self._parent
        root = cid
        while parent[root] != root:
            root = parent[root]
        while parent[cid] != root:
            parent[cid], cid = root, parent[cid]
        return root

    def _new_class(self) -> int:
        cid = len(self._parent)
        self._parent.append(cid)
        self._classes[cid] = EClass()
        self._dirty.add(cid)
        return cid

    def _note_parents(self, cid: int, child_ids: tuple[int, ...]) -> None:
        parents = self._parents
        for child in child_ids:
            bucket = parents.get(child)
            if bucket is None:
                parents[child] = {cid}
            else:
                bucket.add(cid)

    def merge(self, a: int, b: int) -> int:
        """Union the classes of ``a`` and ``b``; returns the surviving
        canonical id.  Call :meth:`rebuild` before reading the graph —
        congruence closure is deferred so batches of merges pay for one
        propagation pass."""
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        # union by size of the class data (cheaper dict merges)
        if (len(self._classes[a].nodes) + len(self._classes[a].members)
                < len(self._classes[b].nodes)
                + len(self._classes[b].members)):
            a, b = b, a
        self._parent[b] = a
        absorbed = self._classes.pop(b)
        target = self._classes[a]
        self._dirty.add(a)
        moved = self._parents.pop(b, None)
        if moved is not None:
            bucket = self._parents.get(a)
            if bucket is None:
                self._parents[a] = moved
            else:
                bucket.update(moved)
        target.nodes.update(absorbed.nodes)
        for term, seq in absorbed.members.items():
            if term not in target.members:
                target.members[term] = seq
        self._trim_members(target)
        self.merges += 1
        return a

    def _trim_members(self, eclass: EClass) -> None:
        if len(eclass.members) <= self.max_members:
            return
        kept = sorted(eclass.members.items(),
                      key=lambda item: (item[0].size(), item[1]))
        eclass.members = dict(kept[:self.max_members])

    # -- insertion ----------------------------------------------------------

    def add(self, term: Term) -> int:
        """Insert ``term`` (canonicalized) and every subterm; returns the
        canonical id of its e-class.  Idempotent: re-adding a
        represented term is a dictionary probe per new subterm."""
        term = canon(term)
        pending = [term]
        order: list[Term] = []
        seen: set[Term] = set()
        while pending:  # iterative post-order over distinct subterms
            node = pending[-1]
            if node in self._term_class or node in seen:
                pending.pop()
                continue
            missing = [child for child in node.args
                       if child not in self._term_class
                       and child not in seen]
            if missing:
                pending.extend(missing)
                continue
            pending.pop()
            seen.add(node)
            order.append(node)
        for node in order:
            child_ids = tuple(self.find(self._term_class[child])
                              for child in node.args)
            key = _node_key(node.op, node.label, child_ids)
            cid = self._hashcons.get(key)
            if cid is None:
                cid = self._new_class()
                self._hashcons[key] = cid
                self.enodes_allocated += 1
            else:
                cid = self.find(cid)
            eclass = self._classes[cid]
            eclass.nodes[key] = (node.op, node.label, child_ids)
            self._note_parents(cid, child_ids)
            self._dirty.add(cid)  # every loop node is a new member term
            if node not in eclass.members:
                eclass.members[node] = self._seq
                self._seq += 1
                self._trim_members(eclass)
            self._term_class[node] = cid
        return self.find(self._term_class[term])

    def add_enode(self, op: str, label: Hashable,
                  child_ids: tuple[int, ...]) -> int:
        """Insert one e-node given by child *classes* (no ground term)
        and return its class — the e-matcher's instantiation primitive.
        Classes created this way may have no member terms;
        :meth:`best_terms` still covers them through e-node rebuilds."""
        child_ids = tuple(self.find(child) for child in child_ids)
        key = _node_key(op, label, child_ids)
        cid = self._hashcons.get(key)
        if cid is None:
            cid = self._new_class()
            self._hashcons[key] = cid
            self.enodes_allocated += 1
        else:
            cid = self.find(cid)
        eclass = self._classes[cid]
        if key not in eclass.nodes:
            self._dirty.add(cid)  # existing class gained a spelling
        eclass.nodes[key] = (op, label, child_ids)
        self._note_parents(cid, child_ids)
        return cid

    def find_enode(self, op: str, label: Hashable,
                   child_ids: tuple[int, ...]) -> int | None:
        """The class of an existing e-node, or ``None`` — a pure probe
        (never allocates)."""
        child_ids = tuple(self.find(child) for child in child_ids)
        cid = self._hashcons.get(_node_key(op, label, child_ids))
        return None if cid is None else self.find(cid)

    def class_of(self, term: Term) -> int | None:
        """The class representing ``term``, or ``None`` when the exact
        term was never inserted (it may still be *represented* via
        e-node recombination — this map only tracks insertions)."""
        cid = self._term_class.get(canon(term))
        return None if cid is None else self.find(cid)

    def lookup(self, term: Term) -> int | None:
        """The class *representing* ``term``, resolved structurally
        through the hashcons — covers e-node recombinations that were
        never inserted whole.  Pure probe: never allocates."""
        term = canon(term)
        cid = self._term_class.get(term)
        if cid is not None:
            return self.find(cid)
        child_ids = []
        for arg in term.args:
            child = self.lookup(arg)
            if child is None:
                return None
            child_ids.append(child)
        return self.find_enode(term.op, term.label, tuple(child_ids))

    # -- congruence closure -------------------------------------------------

    def rebuild(self) -> None:
        """Restore the congruence invariant: e-nodes that canonicalize
        to the same key live in the same class.  Runs upward-merge
        passes to a fixpoint; each pass is O(e-nodes)."""
        while True:
            changed = False
            fresh: dict[tuple, int] = {}
            for cid in list(self._classes):
                if self._parent[cid] != cid:
                    continue  # absorbed by a merge earlier in this pass
                for node in list(self._classes[self.find(cid)]
                                 .nodes.values()):
                    op, label, child_ids = node
                    key = _node_key(
                        op, label,
                        tuple(self.find(child) for child in child_ids))
                    owner = fresh.get(key)
                    mine = self.find(cid)
                    if owner is None:
                        fresh[key] = mine
                    elif self.find(owner) != mine:
                        self.merge(owner, mine)
                        changed = True
            if not changed:
                self._hashcons = fresh
                break
        # Re-key every class's node table canonically and drop duplicates.
        for cid, eclass in self._classes.items():
            rekeyed: dict[tuple, tuple] = {}
            for op, label, child_ids in eclass.nodes.values():
                canon_children = tuple(self.find(child)
                                       for child in child_ids)
                rekeyed[_node_key(op, label, canon_children)] = \
                    (op, label, canon_children)
                self._note_parents(cid, canon_children)
            eclass.nodes = rekeyed

    # -- incremental-matching frontier --------------------------------------

    def dirty_classes(self) -> set[int]:
        """Find-normalized classes changed since :meth:`clear_dirty`."""
        return {self.find(cid) for cid in self._dirty}

    def clear_dirty(self) -> None:
        """Mark the current state as fully processed (the saturation
        driver calls this after consuming a round's frontier)."""
        self._dirty.clear()

    def closure_up(self, cids) -> set[int]:
        """``cids`` plus every class reachable by following parent
        edges upward (find-normalized).

        This is the sound re-match frontier for incremental
        e-matching: any *new* match must structurally descend into a
        changed class, so its pattern root lies in the upward closure
        of the dirty set — classes outside it were fully matched in an
        earlier round against an identical local structure, and
        re-matching them could only re-derive merges that are already
        no-ops.
        """
        seen: set[int] = set()
        frontier = [self.find(cid) for cid in cids]
        parents = self._parents
        while frontier:
            cid = frontier.pop()
            if cid in seen:
                continue
            seen.add(cid)
            for parent in parents.get(cid, ()):
                root = self.find(parent)
                if root not in seen:
                    frontier.append(root)
        return seen

    # -- views --------------------------------------------------------------

    def class_ids(self) -> list[int]:
        """Canonical ids of all live classes (deterministic order)."""
        return sorted(self._classes)

    def class_count(self) -> int:
        return len(self._classes)

    def enodes_of(self, cid: int) -> list[tuple]:
        """The ``(op, label, child class ids)`` e-nodes of a class."""
        return list(self._classes[self.find(cid)].nodes.values())

    def members_of(self, cid: int) -> list[Term]:
        """Inserted member terms, smallest first (deterministic)."""
        eclass = self._classes[self.find(cid)]
        return [term for term, _ in sorted(
            eclass.members.items(),
            key=lambda item: (item[0].size(), item[1]))]

    def __iter__(self) -> Iterator[int]:
        return iter(self.class_ids())

    def __repr__(self) -> str:
        return (f"EGraph({self.class_count()} classes, "
                f"{self.enodes_allocated} e-nodes allocated)")

    # -- representative terms ----------------------------------------------

    def best_terms(self) -> dict[int, Term]:
        """One smallest known term per class, computed to a fixpoint:
        seeded from member terms (every class has at least one, so the
        map is total) and improved by rebuilding each e-node from its
        children's current bests.  Cyclic e-nodes simply never improve
        on their class's finite members."""
        best: dict[int, Term] = {}
        for cid in self._classes:
            members = self.members_of(cid)
            if members:
                best[cid] = members[0]
        changed = True
        while changed:
            changed = False
            for cid, eclass in self._classes.items():
                for op, label, child_ids in eclass.nodes.values():
                    resolved = [self.find(child) for child in child_ids]
                    if any(child not in best for child in resolved):
                        continue
                    built = canon(Term(
                        op, tuple(best[child] for child in resolved),
                        label))
                    current = best.get(cid)
                    if current is None or built.size() < current.size():
                        best[cid] = built
                        changed = True
        return best

    def sample_terms(self, cid: int, limit: int,
                     best: dict[int, Term] | None = None) -> list[Term]:
        """Up to ``limit`` distinct representative terms of a class:
        its inserted members plus each e-node rebuilt from its
        children's best terms (so cross-class merges surface new
        representatives without re-inserting them), smallest first."""
        if best is None:
            best = self.best_terms()
        cid = self.find(cid)
        eclass = self._classes[cid]
        candidates: dict[Term, int] = dict(eclass.members)
        for op, label, child_ids in eclass.nodes.values():
            resolved = [self.find(child) for child in child_ids]
            if any(child not in best for child in resolved):
                continue
            built = canon(Term(
                op, tuple(best[child] for child in resolved), label))
            if built not in candidates:
                candidates[built] = self._seq + 1  # after real members
        ranked = sorted(candidates.items(),
                        key=lambda item: (item[0].size(), item[1]))
        return [term for term, _ in ranked[:limit]]

    # -- diagnostics --------------------------------------------------------

    def represented_counts(self, cap: int = COUNT_CAP) -> dict[int, int]:
        """Distinct terms represented per class, saturating at ``cap``.

        Computed as a monotone fixpoint of ``count(c) = sum over
        e-nodes of the product of child counts``; cyclic classes keep
        growing until they saturate at the cap, which is the honest
        reading ("effectively unbounded") rather than an infinite loop.
        """
        counts: dict[int, int] = {cid: 0 for cid in self._classes}
        changed = True
        while changed:
            changed = False
            for cid, eclass in self._classes.items():
                total = 0
                for op, label, child_ids in eclass.nodes.values():
                    product = 1
                    for child in child_ids:
                        product *= counts[self.find(child)]
                        if product >= cap:
                            product = cap
                            break
                    total += product
                    if total >= cap:
                        total = cap
                        break
                if total > counts[cid]:
                    counts[cid] = total
                    changed = True
        return counts

    def represented_total(self, cap: int = COUNT_CAP) -> int:
        """Distinct terms represented across all classes (saturating)."""
        total = 0
        for count in self.represented_counts(cap).values():
            total += count
            if total >= cap:
                return cap
        return total
