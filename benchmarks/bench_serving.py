"""Serving-daemon load benchmark: p50/p99 latency, qps, and parity.

The daemon is measured against the system it replaces — a sequential
in-process optimize loop — on the workload it exists for: a
zipf-skewed replay (:func:`~repro.workloads.corpus.corpus_stream` with
``zipf``) over a corpus with more distinct *skeleton families*
(:func:`~repro.workloads.corpus.serving_corpus`) than one optimizer's
caches hold.  Three claims are measured:

1. **Throughput** — the daemon at 4 process workers must serve the
   replay at **2x** the sequential loop's qps.  As in
   ``bench_parallel``, the mechanism is aggregate cache capacity, not
   CPU parallelism (the report records ``cpus``): skeleton-affinity
   routing makes the workers' caches shards of one pool-wide cache
   that holds the whole corpus, while the sequential loop's
   single-process cache thrash-misses the zipf tail at cold-optimize
   cost.  Worker startup and the cold fill pass are untimed (paid
   once per daemon lifetime) and reported separately.

2. **Warm-over-cold family speedup** — serving a query whose family
   is already cached must be at least **3x** faster than the cold
   optimize of a new family (measured one-at-a-time over the wire, so
   both sides include protocol cost).

3. **Parity** — every plan the daemon serves must be bit-identical to
   the sequential optimizer's plan for the same query: same chosen
   term (interned identity), same estimated cost, same derivation
   rule sequence.  The cold fill covers every distinct query; repeats
   are cache hits of those same entries.

Latency (p50/p99/mean) is measured client-side per request during the
replay with ``CONCURRENCY`` requests pipelined — so it includes queue
wait, which is what a serving latency number means.

Run directly for the JSON artifact (``BENCH_serving.json`` at the repo
root)::

    PYTHONPATH=src python benchmarks/bench_serving.py

``--quick`` is the CI smoke variant: a 2-worker daemon over a small
corpus, enforcing daemon health and parity but no timing bars.
``--check-artifact`` re-validates the committed artifact against the
bars without running anything (the CI regression gate).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import BatchOptimizer
from repro.schema.generator import GeneratorConfig, generate_database
from repro.serve import AsyncServeClient, PlanServer
from repro.workloads.corpus import corpus_stream, serving_corpus

#: Acceptance bar: daemon qps over the sequential loop's qps.
MIN_SPEEDUP = 2.0

#: Bar: warm family service time over cold family optimize time.
MIN_FAMILY_SPEEDUP = 3.0

#: Distinct skeleton families — chosen to exceed one process's exact
#: plan-cache capacity (``Optimizer.PLAN_CACHE_MAX`` = 1024) and dwarf
#: its parameterized capacity, while fitting the 4-worker pool's
#: aggregate with headroom.
CORPUS_DISTINCT = 2400

#: Optimize calls in the timed zipf replay.
TRAFFIC = 6000

#: Zipf popularity skew of the replay (mild: a warm head plus a long
#: tail that an undersized LRU keeps evicting).
ZIPF_SKEW = 0.5

WORKERS = 4

#: Client-side pipelining during the replay.
CONCURRENCY = 32

#: One-at-a-time samples for the warm-family latency series.
FAMILY_SAMPLE = 200

UNIX_PATH = "/tmp/repro-bench-serving.sock"


def _bench_db():
    return generate_database(GeneratorConfig(
        n_persons=100, n_vehicles=60, n_addresses=25, seed=2026))


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _mismatches(expected, served) -> list[int]:
    """Indices where a served result is not bit-identical to the
    sequential optimizer's result (plan objects are compared through
    the wire-stable fields: chosen term identity, cost, derivation)."""
    bad = []
    for index, (a, b) in enumerate(zip(expected, served)):
        same = (a.chosen is b.chosen
                and a.estimated_cost == b.estimated_cost
                and [s.rule.name for s in a.derivation.steps]
                == [s.rule.name for s in b.derivation.steps])
        if not same:
            bad.append(index)
    return bad


async def _drive_daemon(db, corpus, replay, *, workers: int,
                        backend: str) -> dict:
    """Start a daemon, cold-fill it, run the timed replay, and take
    the one-at-a-time cold/warm latency series."""
    server = PlanServer(db, workers=workers, backend=backend,
                        unix_path=UNIX_PATH)
    started = time.perf_counter()
    await server.start()
    startup_s = time.perf_counter() - started

    async with AsyncServeClient(unix_path=UNIX_PATH) as client:
        # Cold fill: every distinct query once, one at a time, timed
        # per request (the cold series of the family-speedup bar) and
        # decoded for the parity check.  Untimed toward throughput —
        # it is the once-per-lifetime warm-up of the daemon's caches.
        cold_ms: list[float] = []
        fill_results = []
        fill_started = time.perf_counter()
        for query in corpus:
            started = time.perf_counter()
            served = await client.optimize(query)
            cold_ms.append((time.perf_counter() - started) * 1000)
            fill_results.append(served.result)
        cold_fill_s = time.perf_counter() - fill_started

        # Warm series: repeats of already-cached families, also one
        # at a time so the two series differ only in cache state.
        warm_ms: list[float] = []
        for query in corpus[:FAMILY_SAMPLE]:
            started = time.perf_counter()
            await client.optimize(query, decode=False)
            warm_ms.append((time.perf_counter() - started) * 1000)

        # Timed replay: CONCURRENCY requests pipelined, per-request
        # latency recorded client-side (includes queue wait).
        latencies_ms: list[float] = []
        gate = asyncio.Semaphore(CONCURRENCY)

        async def one(query):
            async with gate:
                started = time.perf_counter()
                response = await client.optimize(query, decode=False)
                latencies_ms.append(
                    (time.perf_counter() - started) * 1000)
                return response

        replay_started = time.perf_counter()
        responses = await asyncio.gather(*[one(q) for q in replay])
        replay_s = time.perf_counter() - replay_started

        stats = await client.stats()

    await server.stop()
    errors = sum(1 for r in responses if not r.raw.get("ok"))
    return {
        "startup_s": startup_s, "cold_fill_s": cold_fill_s,
        "cold_ms": cold_ms, "warm_ms": warm_ms,
        "fill_results": fill_results, "latencies_ms": latencies_ms,
        "replay_s": replay_s, "errors": errors, "stats": stats,
    }


def measure_serving(db, *, distinct: int = CORPUS_DISTINCT,
                    traffic: int = TRAFFIC, workers: int = WORKERS,
                    zipf: float = ZIPF_SKEW,
                    backend: str = "process") -> dict:
    corpus = serving_corpus(distinct)
    replay = corpus_stream(corpus, traffic, zipf=zipf)

    # Sequential baseline: the in-process loop the daemon replaces —
    # same untimed cold fill over the distinct set, then the same
    # replay against whatever its single cache managed to keep.
    sequential = BatchOptimizer(db, workers=1,
                                plan_cache_max=Optimizer.PLAN_CACHE_MAX)
    expected = [r.result
                for r in sequential.optimize_many(corpus).results]
    started = time.perf_counter()
    sequential.optimize_many(replay)
    sequential_s = time.perf_counter() - started

    daemon = asyncio.run(_drive_daemon(db, corpus, replay,
                                       workers=workers,
                                       backend=backend))

    mismatches = _mismatches(expected, daemon["fill_results"])
    latencies = sorted(daemon["latencies_ms"])
    cold_mean = sum(daemon["cold_ms"]) / len(daemon["cold_ms"])
    warm_mean = sum(daemon["warm_ms"]) / len(daemon["warm_ms"])
    sequential_qps = traffic / sequential_s
    daemon_qps = traffic / daemon["replay_s"]
    plan_cache = daemon["stats"]["plan_cache"]
    server_stats = daemon["stats"]["server"]
    return {
        "config": {
            "distinct": distinct, "traffic": traffic,
            "workers": workers, "backend": backend, "zipf": zipf,
            "concurrency": CONCURRENCY, "cpus": os.cpu_count(),
            "plan_cache_max": Optimizer.PLAN_CACHE_MAX,
            "param_cache_max": Optimizer.PARAM_CACHE_MAX,
        },
        "sequential": {
            "elapsed_s": round(sequential_s, 2),
            "qps": round(sequential_qps, 1),
        },
        "daemon": {
            "startup_s": round(daemon["startup_s"], 2),
            "cold_fill_s": round(daemon["cold_fill_s"], 2),
            "elapsed_s": round(daemon["replay_s"], 2),
            "qps": round(daemon_qps, 1),
            "p50_ms": round(_percentile(latencies, 0.50), 3),
            "p99_ms": round(_percentile(latencies, 0.99), 3),
            "mean_ms": round(sum(latencies) / len(latencies), 3),
            "errors": daemon["errors"],
            "shed": server_stats["shed"],
            "served": server_stats["served"],
            "plan_cache_hits": plan_cache.get("hits", 0),
            "plan_cache_size": plan_cache.get("size", 0),
        },
        "family": {
            "cold_ms_mean": round(cold_mean, 3),
            "warm_ms_mean": round(warm_mean, 3),
            "speedup": round(cold_mean / warm_mean, 2),
            "samples": len(daemon["warm_ms"]),
        },
        "speedup": round(daemon_qps / sequential_qps, 2),
        "bars": {"min_speedup": MIN_SPEEDUP,
                 "min_family_speedup": MIN_FAMILY_SPEEDUP},
        "parity": {
            "checked": len(corpus),
            "mismatches": len(mismatches),
            "ok": not mismatches,
        },
    }


def _print_report(report: dict) -> None:
    config = report["config"]
    seq, daemon = report["sequential"], report["daemon"]
    family = report["family"]
    print(f"corpus: {config['distinct']} skeleton families, "
          f"zipf(s={config['zipf']}) replay of {config['traffic']} "
          f"requests, {config['cpus']} cpu(s)")
    print(f"  sequential loop : {seq['elapsed_s']:7.2f}s "
          f"({seq['qps']:7.1f} q/s)")
    print(f"  daemon x{config['workers']} [{config['backend']}]: "
          f"{daemon['elapsed_s']:7.2f}s ({daemon['qps']:7.1f} q/s)  "
          f"p50 {daemon['p50_ms']}ms  p99 {daemon['p99_ms']}ms  "
          f"({daemon['shed']} shed, {daemon['errors']} errors)")
    print(f"  startup {daemon['startup_s']}s, cold fill "
          f"{daemon['cold_fill_s']}s (untimed, once per lifetime)")
    print(f"  family speedup : cold {family['cold_ms_mean']}ms -> "
          f"warm {family['warm_ms_mean']}ms = {family['speedup']}x "
          f"(bar: {report['bars']['min_family_speedup']}x)")
    print(f"  throughput speedup: {report['speedup']}x "
          f"(bar: {report['bars']['min_speedup']}x)")
    parity = report["parity"]
    print(f"  parity: {parity['checked'] - parity['mismatches']}"
          f"/{parity['checked']} served plans bit-identical to "
          f"sequential")


def _failures(report: dict, enforce_bars: bool) -> list[str]:
    problems = []
    if report["daemon"]["errors"]:
        problems.append(f"{report['daemon']['errors']} request "
                        f"error(s) during the replay")
    if not report["parity"]["ok"]:
        problems.append(
            f"{report['parity']['mismatches']} served plan(s) differ "
            "from the sequential optimizer")
    if enforce_bars:
        if report["speedup"] < report["bars"]["min_speedup"]:
            problems.append(
                f"daemon speedup {report['speedup']}x below the "
                f"{report['bars']['min_speedup']}x bar")
        if (report["family"]["speedup"]
                < report["bars"]["min_family_speedup"]):
            problems.append(
                f"family warm-over-cold {report['family']['speedup']}x "
                f"below the {report['bars']['min_family_speedup']}x bar")
    return problems


def _artifact_path() -> Path:
    return Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def check_artifact() -> int:
    """Validate the committed artifact against the bars (CI gate)."""
    path = _artifact_path()
    if not path.exists():
        print(f"FAIL: {path} missing", file=sys.stderr)
        return 1
    report = json.loads(path.read_text())
    problems = _failures(report, enforce_bars=True)
    for key in ("p50_ms", "p99_ms", "qps"):
        if key not in report.get("daemon", {}):
            problems.append(f"artifact lacks daemon.{key}")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(f"OK: {path.name} meets the serving bars "
              f"(speedup {report['speedup']}x, "
              f"family {report['family']['speedup']}x, "
              f"p99 {report['daemon']['p99_ms']}ms)")
    return 1 if problems else 0


def main(argv: list[str]) -> int:
    if "--check-artifact" in argv:
        return check_artifact()
    quick = "--quick" in argv
    db = _bench_db()
    if quick:
        report = measure_serving(db, distinct=200, traffic=400,
                                 workers=2, zipf=ZIPF_SKEW)
    else:
        report = measure_serving(db)
    _print_report(report)
    if not quick:
        out = _artifact_path()
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    problems = _failures(report, enforce_bars=not quick)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK: daemon healthy, served plans bit-identical"
              + ("" if quick else ", latency/throughput bars met"))
    return 1 if problems else 0


# -- pytest entry point --------------------------------------------------


def test_daemon_parity_and_health():
    """Acceptance: the daemon serves a replay with zero errors and
    bit-identical plans (smoke scale, thread backend)."""
    db = generate_database(GeneratorConfig(
        n_persons=30, n_vehicles=20, n_addresses=10, seed=2026))
    report = measure_serving(db, distinct=40, traffic=80, workers=2,
                             backend="thread")
    assert report["daemon"]["errors"] == 0, report["daemon"]
    assert report["parity"]["ok"], report["parity"]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
