"""Equality-saturation benchmark: sharing, plan quality, plan cache.

Three claims are measured (and CI-enforced by ``--quick``):

1. **Sharing** — the e-graph's reason to exist.  A naive BFS over
   ``Engine.successors`` materializes every distinct term it reaches;
   the e-graph represents the same rewrite space as e-node
   recombinations.  At equal exploration depth, the e-graph must
   represent at least **10x** more distinct terms per allocated e-node
   than BFS stores per hash-consed term-DAG node.
2. **Plan quality** — saturation search seeds the e-graph with the
   greedy pipeline's forms and extracts over the candidate frontier,
   so its chosen cost can never exceed greedy's.  Measured on the C4
   workload (the Garage Query and the hidden-join family); the smoke
   fails if any query comes out costlier, or if any run exhausts its
   e-node budget (the default pool should saturate well inside it).
3. **Plan cache** — re-optimizing an already-seen query must hit the
   cross-query plan cache and return at least **5x** faster than the
   cold saturation run (in practice it is a dictionary probe, orders
   of magnitude faster).

Run directly for the JSON artifact (written to ``BENCH_saturation.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_saturation.py

``--quick`` runs the CI smoke variant (shallower sharing sweep, single
timing pass) and exits nonzero on any acceptance failure.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.optimizer.optimizer import Optimizer
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.saturate.driver import SaturationBudget, Saturator
from repro.schema.generator import GeneratorConfig, generate_database
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries

#: Exploration depth for the sharing comparison (saturation iterations
#: == BFS levels).
SHARING_DEPTH = 3

#: BFS frontier cap: keeps the naive side tractable.  Truncation is
#: reported; it can only *undercount* BFS's reached terms, and the
#: per-node sharing ratio it feeds is scale-insensitive.
BFS_FRONTIER_CAP = 4_000

#: ISSUE acceptance bars.
MIN_SHARING_RATIO = 10.0
MIN_CACHE_SPEEDUP = 5.0


def _c4_workload():
    """The plan-quality workload: the Garage Query plus the hidden-join
    family (the queries whose payoff is the join plan)."""
    queries = paper_queries()
    workload = [("garage", queries.kg1)]
    for depth in (1, 2, 3):
        workload.append((f"hidden-join-d{depth}", translate_query(
            hidden_join_family(HiddenJoinSpec(depth=depth)))))
    return workload


def _bench_db():
    return generate_database(GeneratorConfig(
        n_persons=100, n_vehicles=60, n_addresses=25, seed=2026))


# -- 1. sharing: represented terms per e-node vs naive BFS ---------------


def _bfs_explore(engine: Engine, rules, seed, depth: int) -> dict:
    """Breadth-first rewrite exploration: every distinct term reached
    within ``depth`` single rewrite steps, stored whole."""
    seen = {canon(seed)}
    frontier = [canon(seed)]
    truncated = False
    for _ in range(depth):
        next_frontier = []
        for term in frontier:
            for result in engine.successors(term, rules):
                if result.term not in seen:
                    seen.add(result.term)
                    next_frontier.append(result.term)
            if len(seen) >= BFS_FRONTIER_CAP:
                truncated = True
                break
        frontier = next_frontier
        if truncated:
            break
    # Hash-consed storage footprint: distinct subterm objects across
    # everything BFS materialized (terms are interned, so object
    # identity is structural identity).
    dag_nodes: set[int] = set()
    stack = list(seen)
    while stack:
        node = stack.pop()
        if id(node) in dag_nodes:
            continue
        dag_nodes.add(id(node))
        stack.extend(node.args)
    return {
        "distinct_terms": len(seen),
        "dag_nodes": len(dag_nodes),
        "terms_per_node": round(len(seen) / max(1, len(dag_nodes)), 4),
        "truncated": truncated,
    }


def measure_sharing(rulebase, depth: int = SHARING_DEPTH) -> dict:
    queries = paper_queries()
    rules = rulebase.group_compiled("saturate")
    engine = Engine()

    started = time.perf_counter()
    run = Saturator(engine, rules, SaturationBudget(
        max_iterations=depth)).run([queries.kg1])
    saturate_ms = (time.perf_counter() - started) * 1000
    # Cyclic classes (``f = f o id`` and friends) represent unboundedly
    # many spellings; count up to a cap and say so.
    count_cap = 10 ** 9
    represented = run.egraph.represented_total(cap=count_cap)
    enodes = run.egraph.enodes_allocated
    egraph_ratio = represented / max(1, enodes)

    started = time.perf_counter()
    bfs = _bfs_explore(engine, rules, queries.kg1, depth)
    bfs_ms = (time.perf_counter() - started) * 1000

    return {
        "depth": depth,
        "egraph": {
            "represented_terms": represented,
            "count_capped": represented >= count_cap,
            "enodes": enodes,
            "terms_per_enode": round(egraph_ratio, 4),
            "wall_ms": round(saturate_ms, 2),
        },
        "bfs": dict(bfs, wall_ms=round(bfs_ms, 2)),
        "sharing_ratio": round(
            egraph_ratio / max(1e-12, bfs["terms_per_node"]), 2),
        "min_ratio": MIN_SHARING_RATIO,
    }


# -- 2. plan quality: saturation vs greedy on the C4 workload ------------


def measure_plan_quality(rulebase, db) -> dict:
    optimizer = Optimizer(rulebase)
    rows = []
    for name, query in _c4_workload():
        greedy = optimizer.optimize(query, db, search="greedy")
        saturate = optimizer.optimize(query, db, search="saturate")
        report = saturate.saturation
        rows.append({
            "query": name,
            "greedy_cost": round(greedy.estimated_cost, 2),
            "saturate_cost": round(saturate.estimated_cost, 2),
            "not_worse": saturate.estimated_cost <= greedy.estimated_cost,
            "budget_hit": report.budget_hit if report else None,
            "iterations": report.iterations if report else None,
            "enodes": report.enodes if report else None,
        })
    return {"per_query": rows,
            "all_not_worse": all(row["not_worse"] for row in rows),
            "any_budget_exhausted": any(row["budget_hit"] == "enodes"
                                        for row in rows)}


# -- 3. plan cache: warm re-optimize vs cold saturation ------------------


def measure_cache_speedup(rulebase, db, warm_repeats: int = 5) -> dict:
    optimizer = Optimizer(rulebase, search="saturate")
    queries = paper_queries()

    optimizer.clear_plan_cache()
    optimizer.engine.clear_nf_cache()
    started = time.perf_counter()
    cold_result = optimizer.optimize(queries.kg1, db)
    cold_ms = (time.perf_counter() - started) * 1000

    warm_ms = None
    for _ in range(warm_repeats):
        started = time.perf_counter()
        warm_result = optimizer.optimize(queries.kg1, db)
        elapsed = (time.perf_counter() - started) * 1000
        warm_ms = elapsed if warm_ms is None else min(warm_ms, elapsed)
    assert warm_result is cold_result, "warm call missed the plan cache"

    return {
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 4),
        "speedup": round(cold_ms / max(1e-9, warm_ms), 1),
        "min_speedup": MIN_CACHE_SPEEDUP,
        "cache": optimizer.plan_cache_info(),
    }


# -- report assembly -----------------------------------------------------


def run_report(depth: int = SHARING_DEPTH) -> dict:
    from repro.rules.registry import standard_rulebase
    rulebase = standard_rulebase()
    db = _bench_db()
    return {
        "sharing": measure_sharing(rulebase, depth),
        "plan_quality": measure_plan_quality(rulebase, db),
        "plan_cache": measure_cache_speedup(rulebase, db),
    }


def _print_report(report: dict) -> None:
    sharing = report["sharing"]
    egraph, bfs = sharing["egraph"], sharing["bfs"]
    print(f"sharing at depth {sharing['depth']}:")
    print(f"  e-graph: {egraph['represented_terms']}"
          + ("+ (capped)" if egraph["count_capped"] else "")
          + f" terms / {egraph['enodes']} e-nodes "
          f"= {egraph['terms_per_enode']} per e-node "
          f"({egraph['wall_ms']} ms)")
    print(f"  BFS:     {bfs['distinct_terms']} terms "
          f"/ {bfs['dag_nodes']} DAG nodes "
          f"= {bfs['terms_per_node']} per node "
          f"({bfs['wall_ms']} ms"
          + (", truncated" if bfs["truncated"] else "") + ")")
    print(f"  sharing ratio: {sharing['sharing_ratio']}x "
          f"(bar: {sharing['min_ratio']}x)")
    print()
    print(f"{'query':>16} {'greedy':>10} {'saturate':>10} "
          f"{'not worse':>10} {'iters':>6} {'enodes':>7}")
    for row in report["plan_quality"]["per_query"]:
        print(f"{row['query']:>16} {row['greedy_cost']:>10} "
              f"{row['saturate_cost']:>10} {str(row['not_worse']):>10} "
              f"{row['iterations']:>6} {row['enodes']:>7}")
    cache = report["plan_cache"]
    print()
    print(f"plan cache: cold {cache['cold_ms']} ms, warm "
          f"{cache['warm_ms']} ms -> {cache['speedup']}x "
          f"(bar: {cache['min_speedup']}x)")


def _failures(report: dict) -> list[str]:
    problems = []
    sharing = report["sharing"]
    if sharing["sharing_ratio"] < MIN_SHARING_RATIO:
        problems.append(
            f"sharing ratio {sharing['sharing_ratio']}x below the "
            f"{MIN_SHARING_RATIO}x bar")
    quality = report["plan_quality"]
    for row in quality["per_query"]:
        if not row["not_worse"]:
            problems.append(
                f"saturation costlier than greedy on {row['query']}: "
                f"{row['saturate_cost']} > {row['greedy_cost']}")
    if quality["any_budget_exhausted"]:
        problems.append("a saturation run exhausted its e-node budget")
    cache = report["plan_cache"]
    if cache["speedup"] < MIN_CACHE_SPEEDUP:
        problems.append(
            f"plan-cache speedup {cache['speedup']}x below the "
            f"{MIN_CACHE_SPEEDUP}x bar")
    return problems


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    report = run_report(depth=2 if quick else SHARING_DEPTH)
    _print_report(report)
    if not quick:
        out = Path(__file__).resolve().parent.parent \
            / "BENCH_saturation.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    problems = _failures(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK: saturation <= greedy everywhere, sharing and cache "
              "bars met")
    return 1 if problems else 0


# -- pytest entry points -------------------------------------------------


def test_sharing_ratio(rulebase):
    """Acceptance: >= 10x distinct terms per e-node vs naive BFS."""
    sharing = measure_sharing(rulebase, depth=2)
    assert sharing["sharing_ratio"] >= MIN_SHARING_RATIO, sharing


def test_saturation_not_worse_than_greedy(rulebase, db):
    """Acceptance: saturation cost <= greedy on every C4 query, within
    budget."""
    quality = measure_plan_quality(rulebase, db)
    assert quality["all_not_worse"], quality
    assert not quality["any_budget_exhausted"], quality


def test_plan_cache_speedup(rulebase, db):
    """Acceptance: >= 5x wall-clock on a repeated query."""
    cache = measure_cache_speedup(rulebase, db)
    assert cache["speedup"] >= MIN_CACHE_SPEEDUP, cache


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
