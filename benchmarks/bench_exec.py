"""Fused execution benchmark: loop pipelines vs the tree-walking
evaluator.

Two claims are measured (this file supersedes the old
``bench_compiled_eval.py`` closure ablation — the closure compiler is
now the fallback tier *inside* the fused backend):

1. **Bulk speedup** — on the bulk iterate/join/nest workload (the
   garage join-nest query plus iterate/unnest chains over a sized
   database) the fused generator pipeline must beat direct evaluation
   by at least **2x** wall clock.  The mechanism is fusion: direct
   evaluation materializes a full intermediate set at every combinator
   boundary, while the fused pipeline's Dedup-elimination pass lets
   each element flow through the whole chain in one loop — and the
   join probe replaces the evaluator's quadratic predicate sweep with
   an index probe.  The columnar fast path is reported as a second,
   unbarred series (its wins depend on numpy availability and
   attribute-chain shapes).
2. **Parity** — a fixed-seed fuzz stream of generated queries (500 in
   the full run) must be *bit-identical* between direct evaluation and
   both fused modes: same values, same types (a ``KBag`` never comes
   back as a ``kset``), and ``EvalError`` outcomes must agree.  Any
   divergence fails the run and prints the offending query.

Run directly for the JSON artifact (written to ``BENCH_exec.json`` at
the repo root)::

    PYTHONPATH=src python benchmarks/bench_exec.py

``--quick`` runs the CI smoke variant: a smaller database and a
120-query parity stream, enforcing parity and pipeline coverage but
not the timing bar (CI hosts are too noisy for wall-clock assertions).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.eval import eval_obj
from repro.core.errors import EvalError
from repro.core.parser import parse_obj
from repro.exec import compile_executable
from repro.fuzz.generator import FuzzConfig, QueryGenerator
from repro.schema.generator import (GeneratorConfig, generate_database,
                                    tiny_database)

#: ISSUE acceptance bar: fused wall clock vs direct evaluation on the
#: bulk workload (aggregate over BULK_QUERIES).
MIN_SPEEDUP = 2.0

#: Queries in the fixed-seed parity stream (full run).
PARITY_COUNT = 500
PARITY_SEED = 2026

#: The bulk iterate/join/nest workload the speedup bar is measured on.
#: Join/nest shapes dominate by design: that is where fusion's index
#: probes beat the evaluator's per-pair predicate sweep.
BULK_QUERIES = {
    "garage KG2 (join-nest)":
        "nest(pi1, pi2) o (unnest(pi1, pi2) >< id)"
        " o <join(in @ (id >< cars), (id >< grgs)), pi1> ! [V, P]",
    "equi self-join":
        "join(eq @ (city o addr >< city o addr), <age o pi1, age o pi2>)"
        " ! [P, P]",
    "iterate chain + unnest":
        "count o unnest(city o addr, grgs)"
        " o iterate(gt @ <age, Kf(20)>, id) ! P",
    "count-correlated":
        "iterate(Kp(T), <id, count o iter(gt @ <age o pi2, age o pi1>,"
        " pi2) o <id, Kf(P)>>) ! P",
}

#: Scan-shaped queries reported (unbarred) for the columnar series.
SCAN_QUERIES = {
    "t1 (map chain)": "iterate(Kp(T), city o addr) ! P",
    "t2k (select+map)":
        "iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P",
}


def sized_db(n_persons: int, n_vehicles: int, seed: int = 1):
    """Standalone twin of ``benchmarks.conftest.sized_db`` (this file
    also runs directly, outside pytest's rootdir path)."""
    return generate_database(GeneratorConfig(
        n_persons=n_persons, n_vehicles=n_vehicles,
        n_addresses=max(5, n_persons // 4), seed=seed))


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _time(fn, repeat: int) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat * 1000


def measure_queries(db, *, repeat: int = 3) -> dict:
    """Per-query timings for eval / fused / columnar, with results
    asserted identical before anything is timed."""
    rows = []
    for name, text in {**BULK_QUERIES, **SCAN_QUERIES}.items():
        query = parse_obj(text)
        fused = compile_executable(query)
        columnar = compile_executable(query, columnar=True)
        reference = eval_obj(query, db)
        identical = (
            type(fused.run(db)) is type(reference)
            and fused.run(db) == reference
            and type(columnar.run(db)) is type(reference)
            and columnar.run(db) == reference)
        eval_ms = _time(lambda: eval_obj(query, db), repeat)
        fused_ms = _time(lambda: fused.run(db), repeat)
        columnar_ms = _time(lambda: columnar.run(db), repeat)
        rows.append({
            "query": name,
            "bulk": name in BULK_QUERIES,
            "fully_lowered": fused.fully_lowered,
            "identical": identical,
            "eval_ms": round(eval_ms, 3),
            "fused_ms": round(fused_ms, 3),
            "columnar_ms": round(columnar_ms, 3),
            "fused_speedup": round(eval_ms / fused_ms, 2),
            "columnar_speedup": round(eval_ms / columnar_ms, 2),
        })
    bulk = [row for row in rows if row["bulk"]]
    bulk_eval = sum(row["eval_ms"] for row in bulk)
    bulk_fused = sum(row["fused_ms"] for row in bulk)
    return {
        "rows": rows,
        "bulk_eval_ms": round(bulk_eval, 3),
        "bulk_fused_ms": round(bulk_fused, 3),
        "bulk_speedup": round(bulk_eval / bulk_fused, 2),
    }


def _outcome(run):
    try:
        return "ok", run()
    except EvalError:
        return "error", EvalError


def measure_parity(db, *, count: int = PARITY_COUNT,
                   seed: int = PARITY_SEED) -> dict:
    """Fixed-seed generated stream: direct evaluation vs both fused
    modes, bit-identical (type-strict) or the run fails."""
    generator = QueryGenerator(FuzzConfig(seed=seed))
    checked = good = 0
    errors = 0
    divergences = []
    for _ in range(count):
        query = generator.query()
        expected_outcome, expected = _outcome(
            lambda: eval_obj(query, db))
        if expected_outcome == "error":
            errors += 1
        for mode, columnar in (("fused", False), ("columnar", True)):
            checked += 1
            outcome, got = _outcome(
                lambda: compile_executable(query, columnar=columnar)
                .run(db))
            same = (outcome == expected_outcome
                    and (outcome == "error"
                         or (type(got) is type(expected)
                             and got == expected)))
            if same:
                good += 1
            elif len(divergences) < 5:
                from repro.core.pretty import pretty
                divergences.append({"mode": mode, "query": pretty(query)})
    return {
        "seed": seed, "queries": count, "checked": checked,
        "good": good, "eval_errors": errors,
        "divergences": divergences, "ok": good == checked,
    }


def _print_report(report: dict) -> None:
    timings = report["timings"]
    print(f"database: |P| = {report['config']['persons']}, "
          f"|V| = {report['config']['vehicles']}")
    print(f"{'query':<26} {'eval ms':>9} {'fused ms':>9} "
          f"{'colmn ms':>9} {'fused x':>8} {'colmn x':>8}")
    for row in timings["rows"]:
        tag = "" if row["fully_lowered"] else "  [fallback]"
        print(f"{row['query']:<26} {row['eval_ms']:>9.2f} "
              f"{row['fused_ms']:>9.2f} {row['columnar_ms']:>9.2f} "
              f"{row['fused_speedup']:>8.1f} "
              f"{row['columnar_speedup']:>8.1f}{tag}")
    print(f"  bulk workload: {timings['bulk_eval_ms']:.1f} ms eval vs "
          f"{timings['bulk_fused_ms']:.1f} ms fused = "
          f"{timings['bulk_speedup']}x (bar: {report['min_speedup']}x)")
    parity = report["parity"]
    print(f"  parity: {parity['good']}/{parity['checked']} bit-identical"
          f" over {parity['queries']} generated queries x 2 modes "
          f"(seed {parity['seed']}, {parity['eval_errors']} raise "
          f"EvalError in both)")


def _failures(report: dict, enforce_speedup: bool) -> list[str]:
    problems = []
    for row in report["timings"]["rows"]:
        if not row["identical"]:
            problems.append(f"{row['query']}: fused result differs "
                            "from direct evaluation")
        if row["bulk"] and not row["fully_lowered"]:
            problems.append(f"{row['query']}: bulk query fell back to "
                            "closure evaluation (not loop-lowered)")
    if not report["parity"]["ok"]:
        problems.append(
            f"{report['parity']['checked'] - report['parity']['good']} "
            f"fuzz divergence(s): {report['parity']['divergences']}")
    if (enforce_speedup
            and report["timings"]["bulk_speedup"] < report["min_speedup"]):
        problems.append(
            f"bulk fused speedup {report['timings']['bulk_speedup']}x "
            f"below the {report['min_speedup']}x bar")
    return problems


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    banner("Fused execution — loop pipelines vs tree-walking evaluation")
    if quick:
        persons, vehicles, parity_count, repeat = 120, 75, 120, 2
    else:
        persons, vehicles, parity_count, repeat = 400, 250, PARITY_COUNT, 3
    db = sized_db(persons, vehicles, seed=2026)
    report = {
        "config": {"persons": persons, "vehicles": vehicles,
                   "repeat": repeat, "quick": quick},
        "min_speedup": MIN_SPEEDUP,
        "timings": measure_queries(db, repeat=repeat),
        "parity": measure_parity(tiny_database(),
                                 count=parity_count),
    }
    _print_report(report)
    if not quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_exec.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    problems = _failures(report, enforce_speedup=not quick)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK: results bit-identical"
              + ("" if quick else ", bulk speedup bar met"))
    return 1 if problems else 0


# -- pytest entry points -------------------------------------------------


def test_exec_parity_smoke():
    """Acceptance: every benchmark query and a 60-query fuzz stream are
    bit-identical between direct evaluation and both fused modes."""
    db = sized_db(40, 25, seed=2026)
    timings = measure_queries(db, repeat=1)
    assert all(row["identical"] for row in timings["rows"]), timings
    parity = measure_parity(tiny_database(), count=60)
    assert parity["ok"], parity["divergences"]


def test_bulk_queries_fully_lowered():
    """The bulk workload must run on the loop pipeline, not the
    closure fallback — otherwise the speedup claim measures nothing."""
    for text in BULK_QUERIES.values():
        plan = compile_executable(parse_obj(text))
        assert plan.fully_lowered, text


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
