"""Experiment F3 — Figure 3: the two Garage Query forms KG1 and KG2.

Regenerates the figure's claim (the forms are equivalent) on generated
databases across a size sweep, and measures the evaluation cost of each
form — the nested form re-runs its inner query per vehicle while the
join form is evaluated once, which is the payoff Section 4.1 argues for.
"""

from __future__ import annotations

import time

import pytest

from repro.core.eval import eval_obj
from benchmarks.conftest import banner, sized_db

SIZES = [20, 40, 80]


@pytest.mark.parametrize("size", SIZES)
def test_kg1_nested_evaluation(benchmark, queries, size):
    database = sized_db(size)
    result = benchmark(eval_obj, queries.kg1, database)
    assert len(result) == len(database.collection("V"))


@pytest.mark.parametrize("size", SIZES)
def test_kg2_join_evaluation(benchmark, queries, size):
    database = sized_db(size)
    result = benchmark(eval_obj, queries.kg2, database)
    assert len(result) == len(database.collection("V"))


def test_figure3_report(benchmark, queries):
    banner("Figure 3 — Garage Query: KG1 == KG2 across database sizes")
    print(f"{'|P|':>6} {'|V|':>6} {'equal':>6} {'KG1 ms':>9} {'KG2 ms':>9}")
    for size in SIZES:
        database = sized_db(size)
        start = time.perf_counter()
        r1 = eval_obj(queries.kg1, database)
        t1 = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        r2 = eval_obj(queries.kg2, database)
        t2 = (time.perf_counter() - start) * 1000
        assert r1 == r2
        print(f"{size:>6} {size:>6} {'yes':>6} {t1:>9.2f} {t2:>9.2f}")
    print("paper claim: the forms are equivalent (proved); reproduced "
          "empirically at every size")
    small = sized_db(16)
    benchmark(eval_obj, queries.kg2, small)
