"""Incremental cross-query saturation benchmark: the parameterized
plan cache against per-query cold saturation.

The workload is the corpus's six constant-varying query shapes
(:data:`repro.workloads.corpus._TEMPLATES`) instantiated at many
distinct constants each — the serving pattern the parameterized cache
targets: every query is *distinct* (the exact-level cache never hits),
but each shape's members share one constant-abstracted skeleton.

Three claims are measured:

1. **Warm-family speedup** — optimizing the stream with the
   parameterized cache enabled must be at least **10x** faster than
   the per-query cold path (``abstract_cache=False``, every query a
   full saturation run) in ``search="saturate"`` mode.  After one cold
   member per family, every later member is served by instantiating
   the family's skeleton entry — no rewriting, no saturation.
2. **Parity** — every plan served from a skeleton entry must be
   bit-identical to what the cold path computes for the same query:
   same best term (interned identity), same plan class, same estimated
   cost, same derivation rule sequence.
3. **Incremental e-matching parity** — dirty-class-scoped match rounds
   must leave every saturation report field identical to the
   match-everything passes on the paper's Garage Query (the repo's
   heaviest saturation workload).

Run directly for the JSON artifact (written to
``BENCH_incremental.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_incremental.py

``--quick`` runs the CI smoke variant: fewer constants per shape, the
parity and cache-behavior checks enforced but not the timing bar (CI
hosts are too noisy for one).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.parser import parse_obj
from repro.core.terms import abstract_constants
from repro.optimizer.optimizer import Optimizer
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.saturate.driver import SaturationBudget, Saturator
from repro.schema.generator import GeneratorConfig, generate_database
from repro.workloads.corpus import _TEMPLATES
from repro.workloads.queries import paper_queries

#: Acceptance bar: warm-family throughput over per-query cold
#: saturation (full runs only; ``--quick`` reports without enforcing).
MIN_SPEEDUP = 10.0

#: Distinct constants instantiated per query shape.
CONSTANTS = 200


def _bench_db():
    return generate_database(GeneratorConfig(
        n_persons=100, n_vehicles=60, n_addresses=25, seed=2026))


def _shape_stream(constants: int):
    """``len(_TEMPLATES) x constants`` distinct queries, interleaved
    shape-major per constant (the adversarial order for an exact-only
    cache: no query ever repeats)."""
    stream = []
    for constant in range(1, constants + 1):
        for _, template in _TEMPLATES:
            stream.append(canon(parse_obj(template.format(c=constant))))
    return stream


def _mismatches(warm_results, cold_results) -> list[int]:
    """Indices where the cache-served result is not bit-identical to
    the cold result (same fields as ``bench_parallel``)."""
    bad = []
    for index, (a, b) in enumerate(zip(warm_results, cold_results)):
        same = (a.best_term is b.best_term
                and type(a.plan) is type(b.plan)
                and a.estimated_cost == b.estimated_cost
                and [s.rule.name for s in a.derivation.steps]
                == [s.rule.name for s in b.derivation.steps])
        if not same:
            bad.append(index)
    return bad


def _incremental_match_parity() -> dict:
    """Saturate the Garage Query with and without dirty-class scoping;
    every report field must match."""
    from repro.rules.registry import standard_rulebase
    rulebase = standard_rulebase()
    pool = rulebase.group_compiled("saturate")
    kg1 = paper_queries().kg1
    reports = {}
    for incremental in (False, True):
        saturator = Saturator(
            Engine(), pool,
            SaturationBudget(incremental_match=incremental))
        reports[incremental] = saturator.run([kg1]).report
    full, scoped = reports[False], reports[True]
    fields = ("iterations", "enodes", "classes", "rewrites_applied",
              "merges", "saturated", "budget_hit", "rule_bans",
              "banned_skips", "match_truncations")
    diverged = [name for name in fields
                if getattr(full, name) != getattr(scoped, name)]
    return {
        "query": "kg1",
        "iterations": scoped.iterations,
        "enodes": scoped.enodes,
        "rewrites_applied": scoped.rewrites_applied,
        "diverged_fields": diverged,
        "ok": not diverged,
    }


def measure(db, *, constants: int = CONSTANTS,
            search: str = "saturate") -> dict:
    stream = _shape_stream(constants)
    traffic = len(stream)
    # One cold optimization per *distinct skeleton*, not per shape:
    # a shape with a fixed constant (deep-pipeline's ``Kf(90)``) forks
    # an extra skeleton at the constant that collides with it, because
    # equal constants share one slot (``f(90, 90)`` and ``f(90, c)``
    # are genuinely different equality patterns).
    skeletons = len({abstract_constants(term)[0] for term in stream})

    cold = Optimizer(search=search, abstract_cache=False)
    started = time.perf_counter()
    cold_results = [cold.optimize(term, db) for term in stream]
    cold_s = time.perf_counter() - started

    warm = Optimizer(search=search)
    started = time.perf_counter()
    warm_results = [warm.optimize(term, db) for term in stream]
    warm_s = time.perf_counter() - started

    mismatches = _mismatches(warm_results, cold_results)
    param = warm.plan_cache_info()["param"]
    shapes = len(_TEMPLATES)
    return {
        "config": {
            "shapes": shapes, "constants": constants,
            "traffic": traffic, "skeletons": skeletons,
            "search": search, "cpus": os.cpu_count(),
        },
        "cold": {
            "elapsed_s": round(cold_s, 2),
            "qps": round(traffic / cold_s, 1),
        },
        "warm": {
            "elapsed_s": round(warm_s, 2),
            "qps": round(traffic / warm_s, 1),
            "param_cache": param,
        },
        "speedup": round(cold_s / warm_s, 2),
        "min_speedup": MIN_SPEEDUP,
        "parity": {
            "checked": traffic,
            "mismatches": len(mismatches),
            "ok": not mismatches,
        },
        "incremental_match": _incremental_match_parity(),
    }


def _print_report(report: dict) -> None:
    config = report["config"]
    print(f"workload: {config['shapes']} shapes x "
          f"{config['constants']} constants = {config['traffic']} "
          f"distinct queries, search={config['search']}, "
          f"{config['cpus']} cpu(s)")
    cold, warm = report["cold"], report["warm"]
    param = warm["param_cache"]
    print(f"  cold (exact keying) : {cold['elapsed_s']:7.2f}s "
          f"({cold['qps']:7.1f} q/s)")
    print(f"  warm (param cache)  : {warm['elapsed_s']:7.2f}s "
          f"({warm['qps']:7.1f} q/s)  skeletons "
          f"{param['hits']}/{param['hits'] + param['misses']} hits, "
          f"{param['blocked']} blocked, "
          f"{param['warm_hits']} warm e-graph reuse(s)")
    print(f"  speedup: {report['speedup']}x "
          f"(bar: {report['min_speedup']}x)")
    parity = report["parity"]
    print(f"  parity: {parity['checked'] - parity['mismatches']}"
          f"/{parity['checked']} bit-identical to the cold path")
    inc = report["incremental_match"]
    state = "identical" if inc["ok"] else \
        f"DIVERGED: {inc['diverged_fields']}"
    print(f"  incremental e-matching on {inc['query']}: "
          f"{inc['iterations']} round(s), {inc['enodes']} e-nodes, "
          f"{inc['rewrites_applied']} rewrites — {state}")


def _failures(report: dict, enforce_speedup: bool) -> list[str]:
    problems = []
    if not report["parity"]["ok"]:
        problems.append(
            f"{report['parity']['mismatches']} cache-served plan(s) "
            "differ from the cold path")
    if not report["incremental_match"]["ok"]:
        problems.append(
            "incremental e-matching diverged from full matching on "
            + ", ".join(report["incremental_match"]["diverged_fields"]))
    param = report["warm"]["param_cache"]
    skeletons = report["config"]["skeletons"]
    expected_hits = report["config"]["traffic"] - skeletons
    if param["hits"] != expected_hits:
        problems.append(
            f"expected {expected_hits} skeleton-cache hits "
            f"(one cold member per distinct skeleton), "
            f"got {param['hits']}")
    if param["blocked"]:
        problems.append(
            f"{param['blocked']} corpus query(ies) unexpectedly "
            "refused abstraction")
    if enforce_speedup and report["speedup"] < report["min_speedup"]:
        problems.append(
            f"warm-family speedup {report['speedup']}x below the "
            f"{report['min_speedup']}x bar")
    return problems


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    db = _bench_db()
    report = measure(db, constants=12 if quick else CONSTANTS)
    _print_report(report)
    problems = _failures(report, enforce_speedup=not quick)
    if not quick:
        out = Path(__file__).resolve().parent.parent \
            / "BENCH_incremental.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
