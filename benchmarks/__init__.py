"""Benchmark suite: one module per table/figure/claim (see DESIGN.md §3)."""
