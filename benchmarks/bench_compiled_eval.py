"""Ablation — compiled closures vs the tree-walking evaluator.

`repro.core.compile` translates ground KOLA terms to Python closures
once, removing per-invocation operator dispatch.  This benchmark
measures both execution modes over the paper's queries; results are
asserted identical.
"""

from __future__ import annotations

import time

import pytest

from repro.core.compile import compile_query
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from benchmarks.conftest import banner, sized_db

QUERIES = {
    "t1 (map chain)": "iterate(Kp(T), city o addr) ! P",
    "t2k (select+map)":
        "iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P",
    "garage KG2":
        "nest(pi1, pi2) o (unnest(pi1, pi2) >< id)"
        " o <join(in @ (id >< cars), (id >< grgs)), pi1> ! [V, P]",
    "count-correlated":
        "iterate(Kp(T), <id, count o iter(gt @ <age o pi2, age o pi1>,"
        " pi2) o <id, Kf(P)>>) ! P",
}


def test_compiled_report(benchmark):
    banner("Ablation — compiled closures vs interpreted evaluation")
    database = sized_db(80)
    print(f"{'query':<20} {'interp ms':>10} {'compiled ms':>12} "
          f"{'speedup':>8}")
    for name, text in QUERIES.items():
        query = parse_obj(text)
        compiled = compile_query(query, database)
        reference = eval_obj(query, database)
        assert compiled() == reference
        start = time.perf_counter()
        for _ in range(3):
            eval_obj(query, database)
        interp_ms = (time.perf_counter() - start) / 3 * 1000
        start = time.perf_counter()
        for _ in range(3):
            compiled()
        compiled_ms = (time.perf_counter() - start) / 3 * 1000
        print(f"{name:<20} {interp_ms:>10.2f} {compiled_ms:>12.2f} "
              f"{interp_ms / compiled_ms:>8.1f}")
    query = parse_obj(QUERIES["garage KG2"])
    benchmark(compile_query(query, database))


@pytest.mark.parametrize("name", list(QUERIES))
def test_interpreted(benchmark, name):
    database = sized_db(60)
    query = parse_obj(QUERIES[name])
    benchmark(eval_obj, query, database)


@pytest.mark.parametrize("name", list(QUERIES))
def test_compiled(benchmark, name):
    database = sized_db(60)
    compiled = compile_query(parse_obj(QUERIES[name]), database)
    benchmark(compiled)


def test_compile_overhead(benchmark):
    """One-time compilation cost (amortized over plan reuse)."""
    database = sized_db(60)
    query = parse_obj(QUERIES["garage KG2"])
    benchmark(compile_query, query, database)
