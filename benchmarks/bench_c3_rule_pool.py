"""Experiment C3 — Section 1.2's verified rule pool.

The authors proved 500+ rules with the Larch Prover.  This benchmark
regenerates the reproducible counterpart: every shipped rule checked by
the Larch-substitute model checker, with throughput measured, plus the
refutation of the paper's literal rule 7 (the checker earning its keep).
"""

from __future__ import annotations

import pytest

from repro.larch.checker import RuleChecker
from repro.larch.report import pool_report, render_report
from repro.rules.basic import PAPER_LITERAL_RULE_7
from benchmarks.conftest import banner


def test_c3_report(benchmark, rulebase):
    banner("C3 — the verified rule pool (Larch-prover substitute)")
    reports = pool_report(rulebase, trials=30)
    text = render_report(reports)
    print(text)
    failures = [r for r in reports if not r.passed]
    assert not failures
    print()
    print(f"pool size: {len(rulebase)} rules "
          "(paper: 500+ LP-proved rules; our pool is smaller but every "
          "rule is machine-checked)")

    checker = RuleChecker(trials=30)
    benchmark(checker.check, rulebase.get("r11"))


def test_check_throughput_simple_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("r1"))
    assert report.passed


def test_check_throughput_query_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("r20"))
    assert report.passed


def test_check_throughput_conditional_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("map-intersect-inj"))
    assert report.passed


def test_refutation_speed(benchmark, rulebase):
    """How quickly an unsound rule (the paper's literal rule 7) is
    refuted."""
    checker = RuleChecker(trials=500)

    def refute():
        report = checker.check(PAPER_LITERAL_RULE_7)
        assert not report.passed
        return report.trials

    trials_needed = benchmark(refute)
    print(f"\nliteral rule 7 refuted after {trials_needed} trial(s)")


def test_whole_pool_cost(benchmark, rulebase):
    """Wall-clock to check the entire pool at smoke trials."""
    def check_pool():
        reports = pool_report(rulebase, trials=5)
        assert all(r.passed for r in reports)
        return len(reports)

    count = benchmark.pedantic(check_pool, iterations=1, rounds=3)
    assert count == len(rulebase)
