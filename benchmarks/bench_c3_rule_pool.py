"""Experiment C3 — Section 1.2's verified rule pool.

The authors proved 500+ rules with the Larch Prover.  This benchmark
regenerates the reproducible counterpart: every shipped rule checked by
the Larch-substitute model checker, with throughput measured, plus the
refutation of the paper's literal rule 7 (the checker earning its keep).
"""

from __future__ import annotations

import pytest

from repro.larch.checker import RuleChecker
from repro.larch.report import pool_report, render_report
from repro.rules.basic import PAPER_LITERAL_RULE_7
from benchmarks.conftest import banner


def test_c3_report(benchmark, rulebase):
    banner("C3 — the verified rule pool (Larch-prover substitute)")
    reports = pool_report(rulebase, trials=30)
    text = render_report(reports)
    print(text)
    failures = [r for r in reports if not r.passed]
    assert not failures
    print()
    print(f"pool size: {len(rulebase)} rules "
          "(paper: 500+ LP-proved rules; our pool is smaller but every "
          "rule is machine-checked)")

    checker = RuleChecker(trials=30)
    benchmark(checker.check, rulebase.get("r11"))


def test_check_throughput_simple_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("r1"))
    assert report.passed


def test_check_throughput_query_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("r20"))
    assert report.passed


def test_check_throughput_conditional_rule(benchmark, rulebase):
    checker = RuleChecker(trials=50)
    report = benchmark(checker.check, rulebase.get("map-intersect-inj"))
    assert report.passed


def test_refutation_speed(benchmark, rulebase):
    """How quickly an unsound rule (the paper's literal rule 7) is
    refuted."""
    checker = RuleChecker(trials=500)

    def refute():
        report = checker.check(PAPER_LITERAL_RULE_7)
        assert not report.passed
        return report.trials

    trials_needed = benchmark(refute)
    print(f"\nliteral rule 7 refuted after {trials_needed} trial(s)")


def test_whole_pool_cost(benchmark, rulebase):
    """Wall-clock to check the entire pool at smoke trials."""
    def check_pool():
        reports = pool_report(rulebase, trials=5)
        assert all(r.passed for r in reports)
        return len(reports)

    count = benchmark.pedantic(check_pool, iterations=1, rounds=3)
    assert count == len(rulebase)


def _pool_workload():
    """Terms the optimizer pipeline actually normalizes."""
    from repro.translate.aqua_to_kola import translate_query
    from repro.workloads.hidden_join import HiddenJoinSpec, \
        hidden_join_family
    from repro.workloads.queries import paper_queries

    queries = paper_queries()
    return [queries.kg1, queries.k4, queries.t1k_source,
            translate_query(hidden_join_family(HiddenJoinSpec(depth=3)))]


def _normalize_all(engine, workload, rules):
    # normalize_result: the full pool contains structural (looping)
    # rules, so hitting max_steps is expected rather than warned about
    engine.stats.reset()
    results = [engine.normalize_result(query, rules, max_steps=200).term
               for query in workload]
    return results, engine.stats.match_attempts


def test_dispatch_scales_with_pool_size(rulebase):
    """Section 4.2's scaling concern: a usable rule system must stay
    fast as the proved pool grows toward 500 rules.  With linear
    dispatch, match attempts grow with pool size even though the extra
    rules never fire on this workload; head-indexed dispatch keeps the
    per-node candidate set near-constant.

    Acceptance (ISSUE): at the full pool, indexed ``match_attempts``
    must be at least 3x below linear — with identical rewrite results.
    """
    from repro.rewrite.engine import Engine

    banner("C3b — dispatch cost vs rule-pool size (linear vs indexed)")
    workload = _pool_workload()
    simplify = rulebase.group("simplify")
    padding = [r for r in rulebase.all_rules() if r not in simplify]
    full_pool = simplify + padding

    print(f"{'pool size':>10} {'linear attempts':>16} "
          f"{'indexed attempts':>17} {'ratio':>7}")
    final_ratio = None
    for size in (len(simplify), len(simplify) + len(padding) // 2,
                 len(full_pool)):
        rules = full_pool[:size]
        linear = Engine(indexed=False, incremental=False)
        indexed = Engine()
        linear_results, linear_attempts = _normalize_all(
            linear, workload, rules)
        indexed_results, indexed_attempts = _normalize_all(
            indexed, workload, rules)
        # equivalence: interning makes identity the strongest check
        for fast, slow in zip(indexed_results, linear_results):
            assert fast is slow
        assert linear.stats.per_rule == indexed.stats.per_rule
        final_ratio = linear_attempts / max(1, indexed_attempts)
        print(f"{size:>10} {linear_attempts:>16} "
              f"{indexed_attempts:>17} {final_ratio:>6.1f}x")

    assert final_ratio >= 3.0, (
        f"indexed dispatch saved only {final_ratio:.1f}x at the full "
        f"pool (need >= 3x)")
