"""Experiment T1 — Table 1: basic combinator operational semantics.

Regenerates Table 1 as an executable conformance table (every equation
checked) and measures evaluator throughput per primitive/former, so
regressions in the semantic core are visible.
"""

from __future__ import annotations

import pytest

from repro.core import constructors as C
from repro.core.eval import apply_fn
from repro.core.eval import test_pred as check_pred
from repro.core.signature import REGISTRY
from repro.core.values import KPair, kset
from benchmarks.conftest import banner

#: (name, term, input, expected) — one row per Table 1 equation.
TABLE1_ROWS = [
    ("id", C.id_(), 7, 7),
    ("pi1", C.pi1(), KPair(1, 2), 1),
    ("pi2", C.pi2(), KPair(1, 2), 2),
    ("compose", C.compose(C.pi1(), C.pi2()), KPair(0, KPair(7, 8)), 7),
    ("pair", C.pair(C.pi2(), C.pi1()), KPair(1, 2), KPair(2, 1)),
    ("cross", C.cross(C.pi1(), C.pi2()),
     KPair(KPair(1, 2), KPair(3, 4)), KPair(1, 4)),
    ("const_f", C.const_f(C.lit(9)), "x", 9),
    ("curry_f", C.curry_f(C.pi1(), C.lit(5)), 6, 5),
    ("cond", C.cond(C.curry_p(C.lt(), C.lit(0)), C.id_(),
                    C.const_f(C.lit(0))), 3, 3),
]

TABLE1_PRED_ROWS = [
    ("eq", C.eq(), KPair(2, 2), True),
    ("lt", C.lt(), KPair(1, 2), True),
    ("leq", C.leq(), KPair(2, 2), True),
    ("gt", C.gt(), KPair(2, 2), False),
    ("in", C.isin(), KPair(1, kset([1, 2])), True),
    ("oplus", C.oplus(C.eq(), C.pair(C.pi1(), C.pi2())),
     KPair(3, 3), True),
    ("conj", C.conj(C.const_p(C.true()), C.const_p(C.true())), 0, True),
    ("disj", C.disj(C.const_p(C.false()), C.const_p(C.true())), 0, True),
    ("inv", C.inv(C.gt()), KPair(1, 2), True),
    ("neg", C.neg(C.const_p(C.false())), 0, True),
    ("const_p", C.const_p(C.true()), 0, True),
    ("curry_p", C.curry_p(C.lt(), C.lit(1)), 5, True),
]


def test_table1_conformance_report(benchmark):
    """Print Table 1 with every equation's observed result."""
    banner("Table 1 — basic KOLA combinators: semantics conformance")
    print(f"{'combinator':<10} {'doc':<48} ok")
    for name, term, value, expected in TABLE1_ROWS:
        doc = REGISTRY[term.op].doc[:48]
        assert apply_fn(term, value) == expected
        print(f"{name:<10} {doc:<48} yes")
    for name, term, value, expected in TABLE1_PRED_ROWS:
        doc = REGISTRY[term.op].doc[:48]
        assert check_pred(term, value) is expected
        print(f"{name:<10} {doc:<48} yes")

    def full_row_check():
        for _, term, value, __ in TABLE1_ROWS:
            apply_fn(term, value)
        for _, term, value, __ in TABLE1_PRED_ROWS:
            check_pred(term, value)

    benchmark(full_row_check)


@pytest.mark.parametrize("name,term,value,expected", TABLE1_ROWS,
                         ids=[r[0] for r in TABLE1_ROWS])
def test_function_throughput(benchmark, name, term, value, expected):
    result = benchmark(apply_fn, term, value)
    assert result == expected


@pytest.mark.parametrize("name,term,value,expected", TABLE1_PRED_ROWS,
                         ids=[r[0] for r in TABLE1_PRED_ROWS])
def test_predicate_throughput(benchmark, name, term, value, expected):
    result = benchmark(check_pred, term, value)
    assert result is expected
