"""Experiment T2 — Table 2: query combinator semantics at scale.

Measures each query former's evaluation cost over growing set sizes,
checking its semantic equation at every size.
"""

from __future__ import annotations

import pytest

from repro.core import constructors as C
from repro.core.eval import apply_fn
from repro.core.values import KPair, kset
from benchmarks.conftest import banner

SIZES = [16, 64, 256]


def _ints(n: int) -> frozenset:
    return kset(range(n))


def _pairs(n: int) -> frozenset:
    return kset(KPair(i % 8, i) for i in range(n))


@pytest.mark.parametrize("size", SIZES)
def test_iterate(benchmark, size):
    term = C.iterate(C.curry_p(C.leq(), C.lit(size // 2)), C.id_())
    data = _ints(size)
    result = benchmark(apply_fn, term, data)
    assert result == kset(x for x in range(size) if size // 2 <= x)


@pytest.mark.parametrize("size", SIZES)
def test_iter(benchmark, size):
    term = C.iter_(C.lt(), C.pi2())
    data = KPair(size // 2, _ints(size))
    result = benchmark(apply_fn, term, data)
    assert result == kset(x for x in range(size) if size // 2 < x)


@pytest.mark.parametrize("size", SIZES)
def test_flat(benchmark, size):
    data = kset(kset(range(i, i + 8)) for i in range(0, size, 8))
    result = benchmark(apply_fn, C.flat(), data)
    assert result == _ints(size)


@pytest.mark.parametrize("size", SIZES)
def test_join(benchmark, size):
    term = C.join(C.eq(), C.pi1())
    data = KPair(_ints(size), _ints(size))
    result = benchmark(apply_fn, term, data)
    assert result == _ints(size)


@pytest.mark.parametrize("size", SIZES)
def test_nest(benchmark, size):
    term = C.nest(C.pi1(), C.pi2())
    data = KPair(_pairs(size), _ints(8))
    result = benchmark(apply_fn, term, data)
    assert len(result) == 8


@pytest.mark.parametrize("size", SIZES)
def test_unnest(benchmark, size):
    groups = kset(KPair(i, kset(range(4))) for i in range(size // 4))
    term = C.unnest(C.pi1(), C.pi2())
    result = benchmark(apply_fn, term, groups)
    assert len(result) == size

def test_table2_report(benchmark):
    banner("Table 2 — query combinators: semantics at |A| = 64")
    rows = [
        ("flat", "flat ! A = union of A's members"),
        ("iterate", "iterate(p, f) ! A = {f!x | x in A, p?x}"),
        ("iter", "iter(p, f) ! [x, B] = {f![x,y] | y in B, p?[x,y]}"),
        ("join", "join(p, f) ! [A, B] = {f![x,y] | p?[x,y]}"),
        ("nest", "nest(f, g) ! [A, B]: NULL-free grouping"),
        ("unnest", "unnest(f, g) ! A: pair keys with members"),
    ]
    for name, equation in rows:
        print(f"  {name:<8} {equation}")
    benchmark(apply_fn, C.flat(), kset([_ints(8), kset(range(8, 16))]))
