"""Ablation — deferred duplicate elimination via bags (Section 6).

The paper's motivating example for the bag extension: a set pipeline
deduplicates at every intermediate step; the bag pipeline deduplicates
once at the end.  This benchmark rewrites a flatten-of-map pipeline with
the ``defer-duplicate-elimination`` COKO block and measures both forms
on duplicate-heavy data (many persons sharing garages), recording the
number of intermediate deduplication points as the shape metric.
"""

from __future__ import annotations

import time

import pytest

from repro.coko.stdblocks import block_defer_dupelim
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.pretty import pretty
from benchmarks.conftest import banner, sized_db

#: cities of all garages of all persons — flatten + map, duplicate heavy.
PIPELINE = ("iterate(Kp(T), city) o flat o iterate(Kp(T), grgs) ! P")

SIZES = [50, 100, 200]


def _dedup_points(term) -> int:
    """Intermediate deduplication points: set-producing stages before
    the last (every iterate/flat over sets deduplicates; distinct counts
    once)."""
    return sum(1 for node in term.subterms()
               if node.op in ("iterate", "flat", "distinct"))


def test_bags_report(benchmark, rulebase):
    banner("Ablation — deferred duplicate elimination (bags, Section 6)")
    query = parse_obj(PIPELINE)
    deferred = block_defer_dupelim().transform(query, rulebase)
    print("set form:", pretty(query))
    print("bag form:", pretty(deferred))
    print(f"dedup points: set form {_dedup_points(query)}, "
          f"bag form 1 (final distinct only)")

    print(f"{'|P|':>6} {'set ms':>8} {'bag ms':>8} {'equal':>6}")
    for size in SIZES:
        database = sized_db(size)
        start = time.perf_counter()
        set_result = eval_obj(query, database)
        set_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        bag_result = eval_obj(deferred, database)
        bag_ms = (time.perf_counter() - start) * 1000
        assert set_result == bag_result
        print(f"{size:>6} {set_ms:>8.2f} {bag_ms:>8.2f} {'yes':>6}")
    print("paper claim (qualitative): dup-elim deferral is expressible "
          "as rewrites producing bag intermediates — reproduced; both "
          "forms verified equal")
    benchmark(eval_obj, deferred, sized_db(50))


@pytest.mark.parametrize("size", SIZES)
def test_set_pipeline(benchmark, size):
    database = sized_db(size)
    query = parse_obj(PIPELINE)
    benchmark(eval_obj, query, database)


@pytest.mark.parametrize("size", SIZES)
def test_bag_pipeline(benchmark, rulebase, size):
    database = sized_db(size)
    deferred = block_defer_dupelim().transform(parse_obj(PIPELINE),
                                               rulebase)
    benchmark(eval_obj, deferred, database)


def test_rewrite_cost(benchmark, rulebase):
    query = parse_obj(PIPELINE)
    block = block_defer_dupelim()
    result = benchmark(block.transform, query, rulebase)
    assert any(node.op == "distinct" for node in result.subterms())
