"""Experiment F7 — Figure 7: the hidden-join query family at unbounded
nesting depth.

Regenerates the family (Figure 7's translated shape) for n = 1..6,
verifies the translation matches the figure's form, and measures
translation cost per depth.
"""

from __future__ import annotations

import pytest

from repro.core import constructors as C
from repro.rewrite.pattern import flatten_compose
from repro.translate.aqua_to_kola import translate_query
from repro.translate.metrics import measure_translation
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from benchmarks.conftest import banner

DEPTHS = [1, 2, 3, 4, 5, 6]


def _is_figure7_shape(query) -> bool:
    """Check the translated query matches Figure 7: iterate(Kp(T),
    <j, h1 o g1 o <id, ... <id, Kf(B)> ...>>) ! A."""
    if query.op != "invoke":
        return False
    fn = query.args[0]
    if fn.op != "iterate" or fn.args[0] != C.const_p(C.true()):
        return False
    body = fn.args[1]
    if body.op != "pair":
        return False
    level = body.args[1]
    while True:
        factors = flatten_compose(level)
        closer = factors[-1]
        if closer.op == "const_f":
            return True
        if closer.op != "pair" or closer.args[0].op != "id":
            return False
        inner = closer.args[1]
        if inner.op == "const_f":
            return True
        level = inner


@pytest.mark.parametrize("depth", DEPTHS)
def test_translation_cost(benchmark, depth):
    aqua = hidden_join_family(HiddenJoinSpec(depth=depth))
    kola = benchmark(translate_query, aqua)
    assert _is_figure7_shape(kola)


def test_figure7_report(benchmark):
    banner("Figure 7 — hidden-join family: translated shapes by depth")
    print(f"{'n':>3} {'AQUA nodes':>11} {'KOLA nodes':>11} "
          f"{'figure-7 shape':>15}")
    for depth in DEPTHS:
        aqua = hidden_join_family(HiddenJoinSpec(depth=depth))
        kola = translate_query(aqua)
        shape = _is_figure7_shape(kola)
        assert shape
        print(f"{depth:>3} {aqua.size():>11} {kola.size():>11} "
              f"{'yes':>15}")
    print("paper: 'nesting can occur to any degree (the value of n above "
          "is unbounded)' — family generated for all n")
    benchmark(translate_query,
              hidden_join_family(HiddenJoinSpec(depth=3)))
