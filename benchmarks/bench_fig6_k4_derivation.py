"""Experiment F6 — Figure 6: rule-based transformation of query K4.

Regenerates the figure's derivation (K4's inner loop eliminated into a
conditional) step by step, shows K3 blocked at rule 15, and measures
the block's cost.
"""

from __future__ import annotations

from repro.coko.stdblocks import block_code_motion
from repro.core.eval import eval_obj
from repro.rewrite.trace import Derivation
from benchmarks.conftest import banner


def test_figure6_report(benchmark, rulebase, queries, db_small):
    banner("Figure 6 — rule-based transformation of query K4")
    derivation = Derivation("K4 code motion")
    result = block_code_motion().transform(queries.k4, rulebase,
                                           derivation=derivation)
    assert result == queries.k4_code_moved
    derivation.verify([db_small])
    print(derivation.render())
    print()
    print("paper's final form: con(Cp(leq,25) @ age, child, Kf({})); "
          "reproduced as con(Cp(lt,25) @ age, ...) — exact under the "
          "converse reading (EXPERIMENTS.md)")

    k3_result = block_code_motion().transform(queries.k3, rulebase)
    assert not any(node.op == "cond" for node in k3_result.subterms())
    print("K3: rule 15 never fires (predicate argument has the form "
          "p @ pi2) — the paper's Section 3.2 discrimination")

    benchmark(block_code_motion().transform, queries.k4, rulebase)


def test_k4_full_block_cost(benchmark, rulebase, queries):
    result = benchmark(block_code_motion().transform, queries.k4, rulebase)
    assert result == queries.k4_code_moved


def test_k4_meaning_preserved_at_scale(benchmark, rulebase, queries, db):
    result = block_code_motion().transform(queries.k4, rulebase)

    def both():
        return (eval_obj(result, db), eval_obj(queries.k4, db))

    before, after = benchmark(both)
    assert before == after
