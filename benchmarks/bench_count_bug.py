"""Experiment C5 — the "count bug" (Section 1.2, Optimizer Correctness).

    "The famous 'count bug' of [24] illustrates how difficult it can be
    to formulate correct transformations."

This benchmark regenerates the bug as a *decidable* artifact: the buggy
COUNT unnesting and its NULL-free-nest fix are both KOLA rules, the
verifier refutes the former and passes the latter, and the two plans are
executed side by side so the missing count-0 rows are visible.
"""

from __future__ import annotations

from repro.core import constructors as C
from repro.core.eval import eval_obj
from repro.core.parser import parse_pred
from repro.larch.checker import RuleChecker
from repro.rewrite.pattern import instantiate
from repro.rules.aggregates import COUNT_BUG, COUNT_UNNEST
from benchmarks.conftest import banner, sized_db


def _bindings():
    return {"p": parse_pred("gt @ <age o pi2, age o pi1>"),
            "A": C.setname("P"), "B": C.setname("P")}


def test_count_bug_report(benchmark):
    banner("C5 — the count bug, stated as rules and decided by the "
           "verifier")
    checker = RuleChecker(trials=300)
    good = checker.check(COUNT_UNNEST)
    bad = checker.check(COUNT_BUG)
    assert good.passed and not bad.passed
    print(f"correct unnesting (NULL-free nest): PASS "
          f"({good.trials} trials)")
    print(f"Kim's unnesting (group the join)  : REFUTED after "
          f"{bad.trials} trials")
    print(bad.counterexample.render())
    print()

    database = sized_db(60)
    bindings = _bindings()
    nested = eval_obj(instantiate(COUNT_BUG.lhs, bindings), database)
    correct = eval_obj(instantiate(COUNT_UNNEST.rhs, bindings), database)
    buggy = eval_obj(instantiate(COUNT_BUG.rhs, bindings), database)
    missing = nested - buggy
    assert correct == nested and buggy != nested
    print(f"on |P| = 60: correct plan returns {len(correct)} rows, "
          f"buggy plan {len(buggy)} — the {len(missing)} zero-count "
          "row(s) silently vanish")
    benchmark(eval_obj, instantiate(COUNT_UNNEST.rhs, bindings), database)


def test_correct_plan_cost(benchmark):
    database = sized_db(60)
    query = instantiate(COUNT_UNNEST.rhs, _bindings())
    result = benchmark(eval_obj, query, database)
    assert len(result) == 60


def test_nested_form_cost(benchmark):
    database = sized_db(60)
    query = instantiate(COUNT_UNNEST.lhs, _bindings())
    result = benchmark(eval_obj, query, database)
    assert len(result) == 60


def test_refutation_cost(benchmark):
    checker = RuleChecker(trials=300)

    def refute():
        report = checker.check(COUNT_BUG)
        assert not report.passed
        return report.trials

    benchmark(refute)
