"""Discrimination-tree matching benchmark: per-node candidate-set size
and wall time as the rule pool grows.

The head-operator index (PR 1) keeps the *candidate list* per node
small, but every candidate still pays a full per-rule ``match()`` walk.
The compiled discrimination tree retrieves all matching rules in one
traversal of the subject, so per-node match-attempt work should stay
near-constant as the pool grows from the simplify group (24 rules on
this workload slice) to the full shipped pool (179 rules).

Run directly for the JSON artifact (written to ``BENCH_trie.json`` at
the repo root, and printed with ``--json``)::

    PYTHONPATH=src python benchmarks/bench_trie_matching.py

``--quick`` runs the smoke variant CI uses: full pool only, one pass,
exiting nonzero if the compiled matcher attempts *more* matches than
the head-indexed baseline.  Under pytest-benchmark the module times the
two engines at the full pool and asserts the ISSUE's >= 2x
attempt-reduction acceptance bar.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.rewrite.engine import Engine
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries

_MAX_STEPS = 200

#: Pool-size sweep: the simplify group, a mid pool, the full pool.
POOL_SIZES = (24, 90, 179)

#: PR 1 head-indexed engine on this exact workload and pool slices,
#: measured at the PR 2 branch point — the trajectory baseline this
#: PR's numbers are compared against.
PR1_BASELINE = {
    "engine": "indexed (PR 1)",
    "per_pool": {
        24: {"match_attempts": 166, "nodes_visited": 48,
             "per_node_candidates": 2.88, "wall_ms": 1.75},
        90: {"match_attempts": 904, "nodes_visited": 57,
             "per_node_candidates": 12.35, "wall_ms": 6.68},
        179: {"match_attempts": 210139, "nodes_visited": 2995,
              "per_node_candidates": 36.5, "wall_ms": 1289.68},
    },
}


def _workload():
    queries = paper_queries()
    return [queries.kg1, queries.k4, queries.t1k_source,
            translate_query(hidden_join_family(HiddenJoinSpec(depth=3)))]


def _full_pool(rulebase):
    """Simplify rules first (so every slice is a usable rewriter), then
    the rest of the shipped pool as padding — the C3 slicing scheme."""
    simplify = rulebase.group("simplify")
    padding = [r for r in rulebase.all_rules() if r not in simplify]
    return simplify + padding


def _normalize_all(engine, rules, workload):
    # The full pool contains structural (looping) rules, so hitting
    # max_steps is expected; normalize_result avoids the warning.
    return [engine.normalize_result(query, rules,
                                    max_steps=_MAX_STEPS).term
            for query in workload]


def _measure(engine, rules, workload, repeats: int = 3) -> dict:
    best = None
    for _ in range(repeats):
        engine.clear_nf_cache()  # time real work, not cache replays
        engine.stats.reset()
        started = time.perf_counter()
        results = _normalize_all(engine, rules, workload)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    stats = engine.stats
    nodes = max(1, stats.nodes_visited)
    candidates = len(rules) * stats.nodes_visited \
        - stats.attempts_skipped_by_index
    return {
        "match_attempts": stats.match_attempts,
        "nodes_visited": stats.nodes_visited,
        "per_node_candidates": round(candidates / nodes, 2),
        "trie_retrievals": stats.trie_retrievals,
        "trie_node_visits": stats.trie_node_visits,
        "trie_candidates": stats.trie_candidates,
        "wall_ms": round(best * 1000, 2),
        "result_sizes": [term.size() for term in results],
        "per_rule_fires": dict(stats.per_rule),
    }


def run_sweep(sizes=POOL_SIZES, repeats: int = 3) -> dict:
    from repro.rules.registry import standard_rulebase

    rulebase = standard_rulebase()
    workload = _workload()
    full_pool = _full_pool(rulebase)
    report: dict = {"workload_queries": len(workload),
                    "max_steps": _MAX_STEPS,
                    "pool_sizes": list(sizes),
                    "pr1_baseline": PR1_BASELINE,
                    "per_pool": {}}
    for size in sizes:
        rules = full_pool[:size]
        indexed = _measure(Engine(compiled=False), rules, workload,
                           repeats)
        compiled = _measure(Engine(), rules, workload, repeats)
        # The three dispatchers must agree exactly (identity via
        # interning); fire counts are the cheap full check here.
        assert compiled["result_sizes"] == indexed["result_sizes"]
        assert compiled["per_rule_fires"] == indexed["per_rule_fires"]
        for row in (indexed, compiled):
            del row["per_rule_fires"]
        report["per_pool"][size] = {
            "indexed": indexed,
            "compiled": compiled,
            "attempt_reduction": round(
                indexed["match_attempts"]
                / max(1, compiled["match_attempts"]), 2),
            "wall_speedup": round(
                indexed["wall_ms"] / max(1e-9, compiled["wall_ms"]), 2),
        }
    return report


def _print_table(report: dict) -> None:
    print(f"{'pool':>6} {'indexed att.':>13} {'compiled att.':>14} "
          f"{'reduction':>10} {'idx cand/node':>14} "
          f"{'trie cand/node':>15} {'speedup':>8}")
    for size, row in report["per_pool"].items():
        indexed, compiled = row["indexed"], row["compiled"]
        print(f"{size:>6} {indexed['match_attempts']:>13} "
              f"{compiled['match_attempts']:>14} "
              f"{row['attempt_reduction']:>9.1f}x "
              f"{indexed['per_node_candidates']:>14} "
              f"{compiled['per_node_candidates']:>15} "
              f"{row['wall_speedup']:>7.1f}x")


def _quick() -> int:
    """CI smoke: full pool, one pass; compiled must not attempt more
    matches than the head-indexed baseline (and results must agree,
    which run_sweep asserts)."""
    report = run_sweep(sizes=(POOL_SIZES[-1],), repeats=1)
    row = report["per_pool"][POOL_SIZES[-1]]
    indexed_attempts = row["indexed"]["match_attempts"]
    compiled_attempts = row["compiled"]["match_attempts"]
    _print_table(report)
    if compiled_attempts > indexed_attempts:
        print(f"FAIL: compiled dispatch attempted {compiled_attempts} "
              f"matches vs {indexed_attempts} for the indexed baseline",
              file=sys.stderr)
        return 1
    print(f"OK: compiled {compiled_attempts} <= indexed "
          f"{indexed_attempts} match attempts at the full pool")
    return 0


# -- pytest-benchmark entry points ---------------------------------------


def test_trie_indexed_full_pool(benchmark, rulebase):
    engine = Engine(compiled=False)
    rules = _full_pool(rulebase)
    workload = _workload()
    benchmark(_normalize_all, engine, rules, workload)


def test_trie_compiled_full_pool(benchmark, rulebase):
    engine = Engine()
    rules = _full_pool(rulebase)
    workload = _workload()
    benchmark(_normalize_all, engine, rules, workload)


def test_compiled_attempt_reduction(rulebase):
    """Acceptance (ISSUE 2): >= 2x reduction in per-node match-attempt
    work vs the PR 1 head-indexed engine at the full 179-rule pool."""
    workload = _workload()
    rules = _full_pool(rulebase)
    indexed = _measure(Engine(compiled=False), rules, workload,
                       repeats=1)
    compiled = _measure(Engine(), rules, workload, repeats=1)
    assert compiled["result_sizes"] == indexed["result_sizes"]
    reduction = indexed["match_attempts"] \
        / max(1, compiled["match_attempts"])
    print(f"\nattempt reduction at pool {len(rules)}: {reduction:.1f}x "
          f"({indexed['match_attempts']} -> "
          f"{compiled['match_attempts']})")
    assert reduction >= 2.0, (
        f"compiled dispatch reduced match attempts only {reduction:.1f}x "
        f"(need >= 2x)")


if __name__ == "__main__":
    if "--quick" in sys.argv:
        raise SystemExit(_quick())
    sweep = run_sweep()
    _print_table(sweep)
    artifact = Path(__file__).resolve().parent.parent / "BENCH_trie.json"
    artifact.write_text(json.dumps(sweep, indent=2) + "\n")
    print(f"\nwrote {artifact}")
    if "--json" in sys.argv:
        print(json.dumps(sweep, indent=2))
