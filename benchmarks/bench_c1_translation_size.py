"""Experiment C1 — Section 4.2 size claims:

* translated queries are O(mn) in parse-tree nodes (n = source nodes,
  m = max simultaneous variables);
* observed translations are less than twice the source size.

Sweeps n (query size, via the hidden-join family and chained filters)
and m (environment depth, via dependent multi-variable OQL queries), and
prints the paper-style size table.
"""

from __future__ import annotations

import pytest

from repro.translate.metrics import measure_translation
from repro.translate.oql import parse_oql
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from benchmarks.conftest import banner


def _deep_env_query(m: int):
    """An OQL query with m simultaneously-scoped variables
    (select [x1, [x2, ...]] from x1 in P, x2 in x1.child, ...)."""
    bindings = ["x1 in P"]
    for index in range(2, m + 1):
        bindings.append(f"x{index} in x{index - 1}.child")
    projection = f"x{m}.age"
    conditions = " and ".join(
        f"x{index}.age > {index}" for index in range(1, m + 1))
    text = (f"select {projection} from {', '.join(bindings)} "
            f"where {conditions}")
    return parse_oql(text)


N_DEPTHS = [1, 2, 3, 4, 5, 6]
M_DEPTHS = [1, 2, 3, 4, 5]


def test_c1_report(benchmark):
    banner("C1 — translation size: O(mn) bound and the <2x observation")
    print("sweep n (hidden-join family, m fixed at 2):")
    print(f"{'n':>3} {'aqua n':>7} {'kola':>6} {'ratio':>6} {'m*n':>6} "
          f"{'<=2x bound':>10}")
    worst_ratio = 0.0
    for depth in N_DEPTHS:
        metrics = measure_translation(
            hidden_join_family(HiddenJoinSpec(depth=depth)))
        worst_ratio = max(worst_ratio, metrics.ratio)
        assert metrics.kola_nodes <= 2 * metrics.bound
        print(f"{depth:>3} {metrics.aqua_nodes:>7} {metrics.kola_nodes:>6} "
              f"{metrics.ratio:>6.2f} {metrics.bound:>6} "
              f"{'yes':>10}")

    print("sweep m (dependent bindings):")
    print(f"{'m':>3} {'aqua n':>7} {'kola':>6} {'ratio':>6} {'m*n':>6}")
    for m in M_DEPTHS:
        metrics = measure_translation(_deep_env_query(m))
        worst_ratio = max(worst_ratio, metrics.ratio)
        assert metrics.max_env_depth == m
        assert metrics.kola_nodes <= 2 * metrics.bound
        print(f"{m:>3} {metrics.aqua_nodes:>7} {metrics.kola_nodes:>6} "
              f"{metrics.ratio:>6.2f} {metrics.bound:>6}")

    print(f"worst observed ratio: {worst_ratio:.2f} "
          "(paper: 'less than twice the size')")
    benchmark(measure_translation,
              hidden_join_family(HiddenJoinSpec(depth=2)))


@pytest.mark.parametrize("m", M_DEPTHS)
def test_translation_cost_by_env_depth(benchmark, m):
    query = _deep_env_query(m)
    metrics = benchmark(measure_translation, query)
    assert metrics.max_env_depth == m
