"""Engine dispatch microbenchmarks: linear vs head-indexed vs compiled
(discrimination-tree) rule dispatch, and cold vs warm canonicalization
cache.

This benchmark quantifies the two caches introduced with hash-consed
terms:

* **Rule dispatch** — ``Engine(indexed=False, incremental=False)``
  replays the original behavior (try every rule at every node, restart
  scans from the root after each rewrite); the default engine dispatches
  through a :class:`~repro.rewrite.ruleindex.RuleIndex` and resumes
  incrementally.  Both must produce identical terms — the test asserts
  it — so the delta is pure dispatch overhead.
* **Canon cache** — ``canon`` is memoized per interned term.  A *cold*
  run canonicalizes freshly built terms (distinct ``lit`` labels defeat
  interning reuse); a *warm* run re-canonicalizes the same terms.

Run under pytest-benchmark for timing tables, or directly for a JSON
summary (counters, not wall-clock — stable across machines)::

    PYTHONPATH=src python benchmarks/bench_engine_dispatch.py
"""

from __future__ import annotations

import json

from repro.core import constructors as C
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import build_chain, canon, canon_cache_stats
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries

_MAX_STEPS = 200


def _workload():
    queries = paper_queries()
    return [queries.kg1, queries.k4, queries.t1k_source,
            queries.t2k_source,
            translate_query(hidden_join_family(HiddenJoinSpec(depth=3)))]


def _simplify_all(engine: Engine, rules, workload) -> list:
    return [engine.normalize_result(q, rules, max_steps=_MAX_STEPS).term
            for q in workload]


def _fresh_chain(tag: int, length: int = 40):
    """A chain no previous run has interned: unique ``lit`` labels keep
    the cons table — and therefore the canon memo — cold."""
    factors = [C.iterate(C.const_p(C.lit(True)), C.const_f(C.lit((tag, i))))
               for i in range(length)]
    return build_chain(factors)


# -- pytest-benchmark entry points ---------------------------------------


def test_linear_dispatch(benchmark, rulebase):
    engine = Engine(indexed=False, incremental=False)
    rules = rulebase.group("simplify")
    workload = _workload()
    benchmark(_simplify_all, engine, rules, workload)


def test_indexed_dispatch(benchmark, rulebase):
    engine = Engine(compiled=False)
    rules = rulebase.group_index("simplify")
    workload = _workload()
    benchmark(_simplify_all, engine, rules, workload)


def test_compiled_dispatch(benchmark, rulebase):
    engine = Engine()
    rules = rulebase.group_compiled("simplify")
    workload = _workload()
    benchmark(_simplify_all, engine, rules, workload)


def test_dispatch_equivalence_and_savings(rulebase):
    """All three dispatchers agree exactly; each tier saves attempts."""
    workload = _workload()
    linear = Engine(indexed=False, incremental=False)
    indexed = Engine(compiled=False)
    compiled = Engine()
    rules = rulebase.group("simplify")
    linear_terms = _simplify_all(linear, rules, workload)
    indexed_terms = _simplify_all(indexed, rules, workload)
    compiled_terms = _simplify_all(compiled, rules, workload)
    for fast, slow in zip(indexed_terms, linear_terms):
        assert fast is slow
    for fast, slow in zip(compiled_terms, linear_terms):
        assert fast is slow
    assert linear.stats.per_rule == indexed.stats.per_rule
    assert linear.stats.per_rule == compiled.stats.per_rule
    assert indexed.stats.match_attempts < linear.stats.match_attempts
    assert compiled.stats.match_attempts < indexed.stats.match_attempts


def test_canon_cold(benchmark):
    """Canonicalize freshly interned chains (memo always misses)."""
    counter = iter(range(10_000_000))

    def cold():
        return canon(_fresh_chain(next(counter)))

    benchmark(cold)


def test_canon_warm(benchmark):
    """Re-canonicalize one already-canonicalized chain (memo hits)."""
    chain = _fresh_chain(-1)
    canon(chain)
    benchmark(canon, chain)


def test_canon_cache_effectiveness():
    before = canon_cache_stats()
    chain = _fresh_chain(-2)
    canon(chain)
    canon(chain)  # second call must be a hit
    after = canon_cache_stats()
    assert after.hits > before.hits
    assert after.size > 0  # live memoized terms are observable


# -- standalone JSON mode ------------------------------------------------


def _json_summary() -> dict:
    from repro.rules.registry import standard_rulebase

    rulebase = standard_rulebase()
    workload = _workload()
    rules = rulebase.group("simplify")
    summary: dict = {"workload_queries": len(workload),
                     "pool_size": len(rules)}

    for name, engine in (
            ("linear", Engine(indexed=False, incremental=False)),
            ("indexed", Engine(compiled=False)),
            ("compiled", Engine())):
        terms = _simplify_all(engine, rules, workload)
        stats = engine.stats
        summary[name] = {
            "match_attempts": stats.match_attempts,
            "nodes_visited": stats.nodes_visited,
            "rewrites": stats.rewrites,
            "attempts_skipped_by_index": stats.attempts_skipped_by_index,
            "subtrees_pruned": stats.subtrees_pruned,
            "trie_retrievals": stats.trie_retrievals,
            "trie_node_visits": stats.trie_node_visits,
            "trie_candidates": stats.trie_candidates,
            "nf_cache": engine.nf_cache_info(),
            "result_sizes": [t.size() for t in terms],
        }
    summary["attempt_ratio"] = round(
        summary["linear"]["match_attempts"]
        / max(1, summary["indexed"]["match_attempts"]), 2)
    summary["compiled_attempt_ratio"] = round(
        summary["indexed"]["match_attempts"]
        / max(1, summary["compiled"]["match_attempts"]), 2)

    base = canon_cache_stats()
    chains = [_fresh_chain(1000 + i) for i in range(50)]
    for chain in chains:
        canon(chain)
    cold = canon_cache_stats()
    for chain in chains:
        canon(chain)
    warm = canon_cache_stats()
    summary["canon_cache"] = {
        "cold_hits": cold.hits - base.hits,
        "cold_misses": cold.misses - base.misses,
        "warm_hits": warm.hits - cold.hits,
        "warm_misses": warm.misses - cold.misses,
        "evictions": warm.evictions,
        "size": warm.size,
    }
    return summary


if __name__ == "__main__":
    print(json.dumps(_json_summary(), indent=2))
