"""Parallel batch-optimization benchmark: throughput and parity.

Two claims are measured:

1. **Batch throughput** — ``optimize_many`` at 4 workers must beat the
   single-process path by at least **2.5x** on a cyclic replay of a
   corpus with more distinct queries (1200) than one plan cache holds
   (``Optimizer.PLAN_CACHE_MAX`` = 1024).  Cyclic replay is the
   adversarial access pattern for an undersized LRU — every entry is
   evicted between its consecutive uses, so the single process pays a
   cold optimize for all traffic.  Shard-affinity routing sends each
   query to a fixed worker, so the pool's per-worker caches act as one
   sharded cache whose aggregate capacity (4 x 1024) holds the whole
   corpus: every pass after the first is served from cache.  The
   mechanism is cache *capacity*, not CPU parallelism — the bar holds
   even on a single-core host (the report records ``cpus``); on a
   multi-core host the cold pass parallelizes on top of it.  Pool
   startup (spawn + imports + rulebase compilation per worker) is paid
   once per pool, excluded via :meth:`BatchOptimizer.warmup` and
   reported separately.
2. **Parity** — the pool's results must be bit-identical to what the
   sequential path computes for every query in the stream: same chosen
   term (interned identity), same plan class, same estimated cost, and
   the same derivation rule sequence.  (``tests/test_parallel.py``
   additionally covers saturate-mode parity.)

A third, unbarred series reports the **steady-state wire path**: the
throughput of a fully warm pool pass, i.e. the per-query cost of
shipping a repeat query to its worker and its plan back.

Run directly for the JSON artifact (written to ``BENCH_parallel.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--quick`` runs the CI smoke variant: 2 workers over a 220-query
corpus, enforcing pool health and parity but not the throughput bar —
a corpus that fits one cache cannot show the capacity effect, and CI
hosts are too noisy for a timing bar.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import BatchOptimizer
from repro.schema.generator import GeneratorConfig, generate_database
from repro.workloads.corpus import (CorpusConfig, corpus_stream,
                                    generate_corpus)

#: ISSUE acceptance bar: pool throughput over single-process throughput.
MIN_SPEEDUP = 2.5

#: Distinct queries — chosen to exceed one plan cache's capacity
#: (``Optimizer.PLAN_CACHE_MAX`` = 1024) while fitting the pool's
#: aggregate capacity with headroom.
CORPUS_DISTINCT = 1200

#: Whole cyclic passes over the distinct set (the first is cold
#: everywhere; the rest are cache-served only by the pool).
PASSES = 5

WORKERS = 4

#: Queries per queue message (both directions); large batches amortize
#: better with bigger chunks than the serving-oriented default.
CHUNK_SIZE = 32


def _bench_db():
    return generate_database(GeneratorConfig(
        n_persons=100, n_vehicles=60, n_addresses=25, seed=2026))


def _mismatches(single_results, pool_results) -> list[int]:
    """Indices where the pool result is not bit-identical to the
    single-process result."""
    bad = []
    for one, other in zip(single_results, pool_results):
        a, b = one.result, other.result
        same = (a.chosen is b.chosen
                and type(a.plan) is type(b.plan)
                and a.estimated_cost == b.estimated_cost
                and [s.rule.name for s in a.derivation.steps]
                == [s.rule.name for s in b.derivation.steps])
        if not same:
            bad.append(one.index)
    return bad


def measure_batch(db, *, distinct: int = CORPUS_DISTINCT,
                  passes: int = PASSES, workers: int = WORKERS,
                  chunk_size: int = CHUNK_SIZE) -> dict:
    corpus = generate_corpus(CorpusConfig(distinct=distinct))
    stream = corpus_stream(corpus, len(corpus) * passes, shuffle=False)

    started = time.perf_counter()
    with BatchOptimizer(db, workers=1) as single:
        single_report = single.optimize_many(stream)
    single_s = time.perf_counter() - started

    with BatchOptimizer(db, workers=workers,
                        chunk_size=chunk_size) as pool:
        started = time.perf_counter()
        pool.warmup()
        warmup_s = time.perf_counter() - started
        started = time.perf_counter()
        pool_report = pool.optimize_many(stream)
        pool_s = time.perf_counter() - started
        # Steady state: one more pass, every query already cached.
        started = time.perf_counter()
        warm_report = pool.optimize_many(corpus)
        warm_s = time.perf_counter() - started

    mismatches = _mismatches(single_report.results, pool_report.results)
    traffic = len(stream)
    return {
        "config": {
            "distinct": distinct, "passes": passes, "traffic": traffic,
            "workers": workers, "chunk_size": chunk_size,
            "cpus": os.cpu_count(),
            "plan_cache_max": Optimizer.PLAN_CACHE_MAX,
        },
        "single": {
            "elapsed_s": round(single_s, 2),
            "qps": round(traffic / single_s, 1),
            "plan_cache": single_report.plan_cache,
        },
        "pool": {
            "mode": pool_report.mode,
            "warmup_s": round(warmup_s, 2),
            "elapsed_s": round(pool_s, 2),
            "qps": round(traffic / pool_s, 1),
            "plan_cache": pool_report.plan_cache,
            "errors": len(pool_report.errors),
            "per_worker_processed": [info["processed"]
                                     for info in pool_report.per_worker],
        },
        "warm_pass": {
            "elapsed_s": round(warm_s, 3),
            "qps": round(len(corpus) / warm_s, 1),
            "ms_per_query": round(warm_s / len(corpus) * 1000, 3),
            "plan_cache": warm_report.plan_cache,
        },
        "speedup": round(single_s / pool_s, 2),
        "min_speedup": MIN_SPEEDUP,
        "parity": {
            "checked": traffic,
            "mismatches": len(mismatches),
            "ok": not mismatches,
        },
    }


def _print_report(report: dict) -> None:
    config = report["config"]
    single, pool = report["single"], report["pool"]
    print(f"corpus: {config['distinct']} distinct x {config['passes']} "
          f"passes = {config['traffic']} queries "
          f"(plan cache holds {config['plan_cache_max']}), "
          f"{config['cpus']} cpu(s)")
    print(f"  single process : {single['elapsed_s']:7.2f}s "
          f"({single['qps']:7.1f} q/s)  cache hits "
          f"{single['plan_cache']['hits']}/{config['traffic']}")
    print(f"  pool x{config['workers']} [{pool['mode']}]: "
          f"{pool['elapsed_s']:7.2f}s ({pool['qps']:7.1f} q/s)  "
          f"cache hits {pool['plan_cache']['hits']}/{config['traffic']}"
          f"  (warmup {pool['warmup_s']}s, {pool['errors']} errors)")
    warm = report["warm_pass"]
    print(f"  steady state   : {warm['ms_per_query']} ms/query "
          f"({warm['qps']:.0f} q/s) on a fully warm pass")
    print(f"  speedup: {report['speedup']}x "
          f"(bar: {report['min_speedup']}x)")
    parity = report["parity"]
    print(f"  parity: {parity['checked'] - parity['mismatches']}"
          f"/{parity['checked']} bit-identical to single-process")


def _failures(report: dict, enforce_speedup: bool) -> list[str]:
    problems = []
    if report["pool"]["mode"] != "pool":
        problems.append("worker pool failed to start "
                        "(ran in-process fallback)")
    if report["pool"]["errors"]:
        problems.append(f"{report['pool']['errors']} worker error(s)")
    if not report["parity"]["ok"]:
        problems.append(
            f"{report['parity']['mismatches']} pool result(s) differ "
            "from the single-process results")
    if enforce_speedup and report["speedup"] < report["min_speedup"]:
        problems.append(
            f"batch speedup {report['speedup']}x below the "
            f"{report['min_speedup']}x bar")
    return problems


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    db = _bench_db()
    if quick:
        report = measure_batch(db, distinct=220, passes=2, workers=2,
                               chunk_size=8)
    else:
        report = measure_batch(db)
    _print_report(report)
    if not quick:
        out = Path(__file__).resolve().parent.parent \
            / "BENCH_parallel.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    problems = _failures(report, enforce_speedup=not quick)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK: pool healthy, results bit-identical"
              + ("" if quick else ", throughput bar met"))
    return 1 if problems else 0


# -- pytest entry points -------------------------------------------------


def test_pool_parity_and_health():
    """Acceptance: pool mode runs, no worker errors, and every result
    is bit-identical to the single-process path (smoke scale)."""
    db = generate_database(GeneratorConfig(
        n_persons=30, n_vehicles=20, n_addresses=10, seed=2026))
    report = measure_batch(db, distinct=60, passes=2, workers=2,
                           chunk_size=8)
    assert report["pool"]["mode"] == "pool", report["pool"]
    assert report["pool"]["errors"] == 0, report["pool"]
    assert report["parity"]["ok"], report["parity"]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
