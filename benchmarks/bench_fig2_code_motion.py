"""Experiment F2 — Figure 2: structurally identical nested queries A3/A4.

Regenerates the paper's discrimination result on both representations:

* AQUA: the code-motion rule needs a *head routine* doing free-variable
  analysis; it accepts A4 and rejects A3.
* KOLA: the same decision falls out of pure structure — K4's predicate
  projects ``pi1`` (the environment), K3's projects ``pi2``; rule 15
  fires only for K4.  No code runs.

Measures the cost of the decision on both sides.
"""

from __future__ import annotations

from repro.aqua.eval import aqua_eval
from repro.aqua.rules import AquaRuleEngine, CODE_MOTION
from repro.coko.stdblocks import block_code_motion, block_env_free_select
from repro.core.eval import eval_obj
from benchmarks.conftest import banner


def test_figure2_report(benchmark, rulebase, queries, db_small):
    banner("Figure 2 — code motion on structurally identical nested "
           "queries")
    # AQUA side: head routine decides
    assert CODE_MOTION.head(queries.a4_aqua) is not None
    assert CODE_MOTION.head(queries.a3_aqua) is None
    print("AQUA  : A4 accepted, A3 rejected — by a HEAD ROUTINE doing "
          "free-variable analysis")

    # KOLA side: structure decides
    k4_result = block_code_motion().transform(queries.k4, rulebase)
    k3_result = block_code_motion().transform(queries.k3, rulebase)
    k4_moved = any(node.op == "cond" for node in k4_result.subterms())
    k3_moved = any(node.op == "cond" for node in k3_result.subterms())
    assert k4_moved and not k3_moved
    print("KOLA  : K4 rewritten to con(...) by rule 15; K3 blocked "
          "(predicate reaches pi2) — by STRUCTURE alone")
    print(f"K4 => {k4_result!r}")

    # semantic checks
    assert eval_obj(k4_result, db_small) == aqua_eval(queries.a4_aqua,
                                                      db_small)
    assert eval_obj(k3_result, db_small) == aqua_eval(queries.a3_aqua,
                                                      db_small)

    benchmark(block_code_motion().transform, queries.k4, rulebase)


def test_aqua_head_routine_cost(benchmark, queries):
    """Cost of the AQUA-side decision (free-variable analysis)."""
    engine = AquaRuleEngine()

    def decide_both():
        engine.rewrite_once(queries.a4_aqua, [CODE_MOTION])
        engine.rewrite_once(queries.a3_aqua, [CODE_MOTION])

    benchmark(decide_both)


def test_kola_structural_decision_cost(benchmark, rulebase, queries):
    """Cost of the KOLA-side decision (pure matching)."""
    block = block_code_motion()

    def decide_both():
        block.transform(queries.k4, rulebase)
        block.transform(queries.k3, rulebase)

    benchmark(decide_both)


def test_k3_alternative_strategy(benchmark, rulebase, queries, db_small):
    """Section 4.2: the shared prefix leaves K3 simplified enough that
    the alternative (selection pushdown) strategy applies."""
    mid = block_code_motion().transform(queries.k3, rulebase)
    final = block_env_free_select().transform(mid, rulebase)
    assert eval_obj(final, db_small) == eval_obj(queries.k3, db_small)
    benchmark(block_env_free_select().transform, mid, rulebase)
