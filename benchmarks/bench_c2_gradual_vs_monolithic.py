"""Experiment C2 — Section 4.2: gradual small rules vs one monolithic
rule with a diving head routine.

The paper's two claims about monolithic rules:

1. *"Complex rules need complex head and body routines"* — the head must
   dive to unbounded depth, so its cost grows with nesting even when it
   ultimately rejects the query.
2. *"Complex rules do not simplify queries"* — a failed monolithic match
   leaves the query untouched, while the gradual blocks simplify it on
   the way to discovering inapplicability.

Both are measured here, plus the ablation from DESIGN.md section 6:
chain-window matching disabled (plain syntactic matching only) to show
why the engine's associative matching is load-bearing.
"""

from __future__ import annotations

import pytest

from repro.coko.hidden_join import untangle
from repro.optimizer.monolithic import MonolithicHiddenJoinRule
from repro.rewrite.engine import Engine
from repro.rewrite.match import match
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from benchmarks.conftest import banner

DEPTHS = [1, 2, 3, 4, 5]


def _query(depth: int, applicable: bool = True):
    return translate_query(hidden_join_family(
        HiddenJoinSpec(depth=depth, applicable=applicable)))


def test_c2_report(benchmark, rulebase):
    banner("C2 — gradual rules vs monolithic rule (hidden joins)")
    print(f"{'n':>3} {'applicable':>10} | {'mono head nodes':>15} "
          f"{'mono simplifies':>15} | {'gradual steps':>13} "
          f"{'gradual simplifies':>18}")
    for depth in DEPTHS:
        for applicable in (True, False):
            query = _query(depth, applicable)
            mono = MonolithicHiddenJoinRule(rulebase)
            mono_result = mono.apply(query)
            mono_changed = mono_result is not None

            final, derivation = untangle(query, rulebase)
            gradual_changed = final != query
            assert gradual_changed  # blocks always simplify these
            if not applicable:
                assert not mono_changed  # rejected, query untouched
            print(f"{depth:>3} {str(applicable):>10} | "
                  f"{mono.nodes_inspected:>15} "
                  f"{str(mono_changed):>15} | {len(derivation):>13} "
                  f"{str(gradual_changed):>18}")
    print("paper: monolithic head-routine work grows with depth and a "
          "'no' leaves the query unchanged; gradual rules always "
          "simplify — reproduced")
    benchmark(lambda: untangle(_query(2), rulebase)[0])


@pytest.mark.parametrize("depth", DEPTHS)
def test_monolithic_cost(benchmark, rulebase, depth):
    query = _query(depth)
    rule = MonolithicHiddenJoinRule(rulebase)
    result = benchmark(rule.apply, query)
    assert result is not None


@pytest.mark.parametrize("depth", DEPTHS)
def test_gradual_cost(benchmark, rulebase, depth):
    query = _query(depth)
    result = benchmark(lambda: untangle(query, rulebase)[0])
    assert result != query


@pytest.mark.parametrize("depth", [2, 4])
def test_monolithic_rejection_cost(benchmark, rulebase, depth):
    """Cost of deciding 'not applicable' — pure waste for the
    monolithic rule."""
    query = _query(depth, applicable=False)
    rule = MonolithicHiddenJoinRule(rulebase)

    def decide():
        rule.reset_stats()
        assert rule.head(query) is None
        return rule.nodes_inspected

    nodes = benchmark(decide)
    assert nodes > 0


def test_ablation_chain_matching(benchmark, rulebase, queries):
    """DESIGN.md ablation: without window/peel matching (plain syntactic
    match at each node) the small rules stop firing inside long chains."""
    engine = Engine()
    query = queries.kg1

    # Step-1 output has a 4-factor chain; rule 19 must fire at a peel.
    from repro.coko.hidden_join import hidden_join_blocks
    step1 = hidden_join_blocks()[0].transform(query, rulebase)
    rule19 = rulebase.get("r19")

    # full engine: fires
    assert engine.rewrite_once(step1, [rule19]) is not None

    # plain matching at every node (no peels): never fires
    plain_hits = sum(
        1 for node in step1.subterms() if match(rule19.lhs, node))
    assert plain_hits == 0
    print("\nablation: rule 19 fires 1 time with invocation peeling, "
          "0 times with plain node matching — chain/peel matching is "
          "load-bearing")
    benchmark(engine.rewrite_once, step1, [rule19])
