"""Experiment F8 — Figure 8 / Section 4.1: the five-step hidden-join
untangling strategy.

Regenerates the Garage Query pipeline KG1 -> KG1a -> KG1b -> KG1c -> KG2
(each intermediate printed and asserted), sweeps the strategy over the
Figure 7 family's nesting depths, and measures rewrite cost per depth.
"""

from __future__ import annotations

import pytest

from repro.aqua.eval import aqua_eval
from repro.coko.hidden_join import hidden_join_blocks, untangle
from repro.core.eval import eval_obj
from repro.core.pretty import pretty_multiline
from repro.optimizer.physical import recognize_join_nest
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from benchmarks.conftest import banner, sized_db

DEPTHS = [1, 2, 3, 4, 5]


def test_figure8_report(benchmark, rulebase, queries):
    banner("Figure 8 / Section 4.1 — five-step untangling of the "
           "Garage Query")
    term = queries.kg1
    for block in hidden_join_blocks():
        term = block.transform(term, rulebase)
        print(f"--- after {block.name} ---")
        print(pretty_multiline(term))
        print()
    assert term == queries.kg2
    print("reached KG2 exactly (Figure 3)")
    benchmark(lambda: untangle(queries.kg1, rulebase)[0])


@pytest.mark.parametrize("depth", DEPTHS)
def test_untangle_cost_by_depth(benchmark, rulebase, depth):
    query = translate_query(hidden_join_family(HiddenJoinSpec(depth=depth)))
    final = benchmark(lambda: untangle(query, rulebase)[0])
    assert recognize_join_nest(final) is not None


def test_depth_sweep_report(rulebase, benchmark):
    banner("Section 4.1 — untangling across nesting depths (Figure 7 "
           "family)")
    database = sized_db(24)
    print(f"{'n':>3} {'steps':>6} {'untangled':>10} {'equivalent':>11}")
    for depth in DEPTHS:
        aqua = hidden_join_family(HiddenJoinSpec(depth=depth))
        query = translate_query(aqua)
        final, derivation = untangle(query, rulebase)
        untangled = recognize_join_nest(final) is not None
        equal = eval_obj(final, database) == aqua_eval(aqua, database)
        assert untangled and equal
        print(f"{depth:>3} {len(derivation):>6} {'yes':>10} {'yes':>11}")
    print("paper: small generally-applicable rules reach the nest-of-join "
          "form at every depth; semantics preserved")
    benchmark(lambda: untangle(
        translate_query(hidden_join_family(HiddenJoinSpec(depth=2))),
        rulebase)[0])


def test_inapplicable_still_simplifies(benchmark, rulebase):
    """Gradual rules simplify queries the transformation does not apply
    to (Section 4.2 'Complex Rules Do Not Simplify Queries')."""
    query = translate_query(hidden_join_family(
        HiddenJoinSpec(depth=3, applicable=False)))

    final, derivation = untangle(query, rulebase)
    assert final != query and len(derivation) > 0
    assert recognize_join_nest(final) is None
    benchmark(lambda: untangle(query, rulebase)[0])
