"""Experiment C4 — the payoff of untangling (Section 4.1's motivation):

*"This kind of optimization may be advantageous because of the variety
of implementation techniques known for performing nestings of joins."*

Executes the Garage Query both ways across database sizes:

* KG1 interpreted — the nested-loops strategy (inner query per vehicle);
* KG2 through the recognized JoinNest plan — membership hash join.

The paper argues the direction qualitatively; here the crossover and the
growth shapes are measured (nested ~ |V| x |P|, join ~ |V| + |P| x fanout),
and the cost model's ranking is validated against wall-clock.
"""

from __future__ import annotations

import time

import pytest

from repro.core.eval import eval_obj
from repro.optimizer.cost import estimate_cost
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.physical import InterpretPlan, recognize_join_nest
from benchmarks.conftest import banner, sized_db

SIZES = [20, 40, 80, 160]


@pytest.mark.parametrize("size", SIZES)
def test_nested_plan(benchmark, queries, size):
    database = sized_db(size)
    plan = InterpretPlan(queries.kg1)
    result = benchmark(plan.execute, database)
    assert len(result) == size


@pytest.mark.parametrize("size", SIZES)
def test_join_plan(benchmark, queries, size):
    database = sized_db(size)
    plan = recognize_join_nest(queries.kg2)
    result = benchmark(plan.execute, database)
    assert len(result) == size


def test_c4_report(benchmark, queries, rulebase):
    banner("C4 — plan speedup from untangling (Garage Query)")
    print(f"{'size':>6} {'nested ms':>10} {'join ms':>9} {'speedup':>8} "
          f"{'est nested':>11} {'est join':>9} {'model ranks ok':>14}")
    join_plan = recognize_join_nest(queries.kg2)
    for size in SIZES:
        database = sized_db(size)
        start = time.perf_counter()
        nested_result = eval_obj(queries.kg1, database)
        nested_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        join_result = join_plan.execute(database)
        join_ms = (time.perf_counter() - start) * 1000
        assert nested_result == join_result
        est_nested = estimate_cost(queries.kg1, database)
        est_join = join_plan.cost_estimate(database)
        ranks_ok = (est_join < est_nested) == (join_ms < nested_ms)
        print(f"{size:>6} {nested_ms:>10.2f} {join_ms:>9.2f} "
              f"{nested_ms / join_ms:>8.1f} {est_nested:>11.0f} "
              f"{est_join:>9.0f} {str(ranks_ok):>14}")
    print("paper claim (qualitative): the join form wins and wins more "
          "at scale — reproduced; cost model ranks correctly")
    benchmark(join_plan.execute, sized_db(20))


def test_optimizer_chooses_join_plan(benchmark, rulebase, queries):
    """End-to-end: the optimizer picks the join plan on cost."""
    optimizer = Optimizer(rulebase)
    database = sized_db(60)

    def optimize():
        optimized = optimizer.optimize(queries.kg1, database)
        from repro.optimizer.physical import JoinNestPlan
        assert isinstance(optimized.plan, JoinNestPlan)
        return optimized

    benchmark(optimize)


def test_speedup_grows_with_size(queries, benchmark):
    """The shape claim: nested/join time ratio increases with |DB|.

    Measurements are warmed and take the best of three runs — a single
    cold-cache run at the small size can otherwise dwarf the signal.
    """
    join_plan = recognize_join_nest(queries.kg2)

    def best_of(fn, runs: int = 3) -> float:
        fn()  # warm-up
        times = []
        for _ in range(runs):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    ratios = []
    for size in (30, 120):
        database = sized_db(size)
        nested = best_of(lambda: eval_obj(queries.kg1, database))
        joined = best_of(lambda: join_plan.execute(database))
        ratios.append(nested / joined)
    assert ratios[1] > ratios[0]
    benchmark(join_plan.execute, sized_db(30))
