"""Ablation benchmarks for the Section 6 extension features:

* the hash equi-join unlocked by untangling equi-correlated hidden joins;
* index scans for equality selections;
* predicate ordering (cheap conjuncts first under short-circuiting);
* ORDER BY through ``listify`` (lists);
* equational-prover throughput (deriving rules from rules).

Each report prints the measured shape next to the expectation.
"""

from __future__ import annotations

import time

import pytest

from repro.aqua.eval import aqua_eval
from repro.coko.hidden_join import untangle
from repro.coko.stdblocks import block_predicate_ordering
from repro.core import constructors as C
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.larch.prover import prove_rule
from repro.optimizer.indexes import IndexCatalog, recognize_index_scan
from repro.optimizer.physical import recognize_join_nest
from repro.translate.aqua_to_kola import translate_query
from repro.translate.oql import parse_oql
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from benchmarks.conftest import banner, sized_db


class TestEquiJoin:
    def test_equijoin_report(self, benchmark, rulebase):
        banner("Extension — hash equi-join after untangling")
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="eq"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        assert plan is not None and plan.eq_keys is not None
        print(f"{'|P|':>6} {'naive ms':>9} {'hash ms':>9} {'speedup':>8}")
        for size in (50, 100, 200):
            database = sized_db(size)
            start = time.perf_counter()
            naive = aqua_eval(aqua, database)
            naive_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            hashed = plan.execute(database)
            hash_ms = (time.perf_counter() - start) * 1000
            assert naive == hashed
            print(f"{size:>6} {naive_ms:>9.2f} {hash_ms:>9.2f} "
                  f"{naive_ms / hash_ms:>8.1f}")
        benchmark(plan.execute, sized_db(50))

    @pytest.mark.parametrize("size", [50, 150])
    def test_hash_equijoin_cost(self, benchmark, rulebase, size):
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="eq"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        database = sized_db(size)
        benchmark(plan.execute, database)


class TestIndexScan:
    def test_index_report(self, benchmark, rulebase):
        banner("Extension — index scan vs full scan (equality selection)")
        query = parse_obj("iterate(eq @ <age, Kf(30)>, id) ! P")
        print(f"{'|P|':>6} {'scan ms':>9} {'index ms':>9}")
        for size in (100, 400, 1600):
            database = sized_db(size)
            catalog = IndexCatalog()
            catalog.build(database, "P", C.prim("age"))
            plan = recognize_index_scan(query, catalog)
            start = time.perf_counter()
            scanned = eval_obj(query, database)
            scan_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            probed = plan.execute(database)
            probe_ms = (time.perf_counter() - start) * 1000
            assert scanned == probed
            print(f"{size:>6} {scan_ms:>9.2f} {probe_ms:>9.3f}")
        print("index probe is ~O(bucket) while the scan is O(|P|)")
        database = sized_db(200)
        catalog = IndexCatalog()
        catalog.build(database, "P", C.prim("age"))
        plan = recognize_index_scan(query, catalog)
        benchmark(plan.execute, database)


class TestPredicateOrdering:
    def test_ordering_report(self, benchmark, rulebase):
        banner("Extension — predicate ordering (Ranked strategy over "
               "conj-comm/assoc)")
        query = parse_obj(
            "iterate(in @ <id, child> & Cp(lt, 45) @ age, id) ! P")
        ordered = block_predicate_ordering().transform(query, rulebase)
        assert ordered != query
        database = sized_db(150)
        start = time.perf_counter()
        before = eval_obj(query, database)
        before_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        after = eval_obj(ordered, database)
        after_ms = (time.perf_counter() - start) * 1000
        assert before == after
        print(f"original order : {before_ms:7.2f} ms (membership test "
              "first)")
        print(f"reordered      : {after_ms:7.2f} ms (cheap comparison "
              "first, short-circuit)")
        benchmark(eval_obj, ordered, database)

    def test_reordering_cost(self, benchmark, rulebase):
        query = parse_obj(
            "iterate(in @ <id, child> & Cp(lt, 45) @ age, id) ! P")
        block = block_predicate_ordering()
        benchmark(block.transform, query, rulebase)


class TestOrderBy:
    def test_order_by_report(self, benchmark):
        banner("Extension — ORDER BY via listify (lists)")
        query = parse_oql(
            "select p from p in P where p.age > 20 order by p.age")
        kola = translate_query(query)
        database = sized_db(120)
        result = eval_obj(kola, database)
        ages = [person.get("age") for person in result]
        assert ages == sorted(ages)
        print(f"translated: {kola!r}")
        print(f"result: a KList of {len(result)} persons, ages "
              "non-decreasing — verified")
        benchmark(eval_obj, kola, database)

    @pytest.mark.parametrize("size", [100, 400])
    def test_listify_cost(self, benchmark, size):
        database = sized_db(size)
        query = parse_obj("listify(age) ! P")
        result = benchmark(eval_obj, query, database)
        assert len(result) == size


class TestProverThroughput:
    def test_prover_report(self, benchmark, rulebase):
        banner("Extension — equational prover (deriving rules from rules)")
        cases = [
            ("r12 from r11 + identities",
             "r12", ["r11", "r2", "r5"]),
            ("r5b from commutativity + r5",
             "r5b", ["conj-comm", "r5"]),
            ("select-map-fuse from r11 + identities",
             "select-map-fuse", ["r11", "r1", "r3", "r5b"]),
        ]
        for title, goal, base_names in cases:
            start = time.perf_counter()
            proof = prove_rule(rulebase.get(goal),
                               [rulebase.get(n) for n in base_names])
            elapsed = (time.perf_counter() - start) * 1000
            assert proof is not None, title
            print(f"{title:<45} proof of {proof.length} steps in "
                  f"{elapsed:6.1f} ms")
        benchmark(prove_rule, rulebase.get("r12"),
                  [rulebase.get("r11"), rulebase.get("r2"),
                   rulebase.get("r5")])
