"""Experiment F4 — Figure 4: the KOLA derivations T1K and T2K.

Regenerates the figure verbatim (every intermediate form with its rule
justification) and measures the pure-matching rewrite cost — the KOLA
counterpart of F1's baseline-with-code cost.
"""

from __future__ import annotations

from repro.coko.stdblocks import block_t1k, block_t2k
from repro.rewrite.engine import Engine
from repro.rewrite.trace import Derivation
from benchmarks.conftest import banner


def test_figure4_report(benchmark, rulebase, queries, db_small):
    banner("Figure 4 — derivations T1K and T2K (declarative rules, "
           "no code)")
    for label, block, source, target in (
            ("T1K", block_t1k(), queries.t1k_source, queries.t1k_target),
            ("T2K", block_t2k(), queries.t2k_source, queries.t2k_target)):
        derivation = Derivation(label)
        result = block.transform(source, rulebase, derivation=derivation)
        assert result == target
        derivation.verify([db_small])
        print(derivation.render())
        print()
    print("note: the paper's step 7 prints gt^-1 == leq; the verified "
          "converse is lt (see EXPERIMENTS.md)")

    def run_both():
        block_t1k().transform(queries.t1k_source, rulebase)
        block_t2k().transform(queries.t2k_source, rulebase)

    benchmark(run_both)


def test_t1k_rewrite_cost(benchmark, rulebase, queries):
    block = block_t1k()
    result = benchmark(block.transform, queries.t1k_source, rulebase)
    assert result == queries.t1k_target


def test_t2k_rewrite_cost(benchmark, rulebase, queries):
    block = block_t2k()
    result = benchmark(block.transform, queries.t2k_source, rulebase)
    assert result == queries.t2k_target


def test_match_attempt_accounting(benchmark, rulebase, queries):
    """Match attempts for T1K (the unification work the paper trades
    against head/body routines)."""
    def measured():
        engine = Engine()
        block_t1k().transform(queries.t1k_source, rulebase, engine=engine)
        return engine.stats

    stats = benchmark(measured)
    assert stats.rewrites == 3  # the paper's three steps
