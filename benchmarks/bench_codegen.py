"""Codegen kernel benchmark: compiled source kernels vs the fused
generator backend.

Three claims are measured:

1. **Bulk speedup** — on the bulk join/nest workload (the garage
   join-nest query, the equi self-join and the correlated count) the
   compiled kernel must beat the fused generator pipeline by at least
   **2x** wall clock.  The mechanism is specialization: the fused
   backend runs per-op generator closures and db-late scalar closures
   per element, while the kernel inlines the whole pipeline — step
   loop, join probes, dedup seen-sets, comparisons, sink accumulation
   — as one flat compiled function with no per-op dispatch.  The
   iterate/unnest chain is reported unbarred: at bench sizes its
   runtime is fixed-overhead-dominated and the ratio is noisy (it
   clears the bar on larger databases).
2. **Warm-family throughput** — serving a constant-varying template
   corpus through the skeleton-keyed kernel cache (compile once per
   skeleton, bind values per query) must be at least **10x** the
   throughput of compiling each concrete query cold.  This isolates
   the PR's cache claim: one kernel serves the whole family.
3. **Parity** — a fixed-seed fuzz stream (500 queries in the full
   run) must be *bit-identical* between direct evaluation and both
   codegen modes (plain and columnar-spliced): same values, same
   types, and ``EvalError`` outcomes must agree.

Run directly for the JSON artifact (written to ``BENCH_codegen.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_codegen.py

``--quick`` runs the CI smoke variant: a smaller database and a
120-query parity stream, still enforcing parity, full lowering, the
warm-family bar, and the 2x codegen-over-fused bulk bar (the ratio
compares two in-process runs of the same workload, so it is stable
enough for CI wall clocks).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.errors import EvalError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.terms import abstract_constants
from repro.exec import compile_executable, compile_kernel
from repro.fuzz.generator import FuzzConfig, QueryGenerator
from repro.rewrite.pattern import canon
from repro.schema.generator import tiny_database
from repro.workloads.corpus import _TEMPLATES

# Direct script runs put benchmarks/ on sys.path automatically; pytest
# collection (rootdir-based) does not, so make the sibling importable
# either way.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_exec import BULK_QUERIES, banner, sized_db  # noqa: E402

#: ISSUE acceptance bar: codegen wall clock vs the fused backend on
#: the bulk join/nest workload (aggregate over JOIN_NEST_QUERIES).
MIN_SPEEDUP = 2.0

#: ISSUE acceptance bar: warm-family throughput vs cold per-query
#: compilation on the constant-template corpus.
WARM_MIN_SPEEDUP = 10.0

#: Queries in the fixed-seed parity stream (full run).
PARITY_COUNT = 500
PARITY_SEED = 2026

#: The join/nest subset of the bulk workload the 2x bar is measured
#: on (matching the fused benchmark's workload definition); the
#: remaining bulk query is timed and reported unbarred.
JOIN_NEST_QUERIES = ("garage KG2 (join-nest)", "equi self-join",
                     "count-correlated")

#: Constant-varying instances per template in the warm-family corpus.
FAMILY_WIDTH = 25

#: Traffic passes over the warm-family corpus (repeats beyond the
#: distinct set model the serving hot path, mirroring
#: ``repro.workloads.corpus.corpus_stream``).
FAMILY_PASSES = 3


def _time(fn, repeat: int) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat * 1000


def measure_bulk(db, *, repeat: int = 3) -> dict:
    """Per-query timings for fused vs codegen (both columnar modes
    off, isolating specialization), results asserted identical before
    anything is timed."""
    rows = []
    for name, text in BULK_QUERIES.items():
        query = canon(parse_obj(text))
        fused = compile_executable(query)
        kernel = compile_kernel(query)
        reference = eval_obj(query, db)
        identical = (
            type(fused.run(db)) is type(reference)
            and fused.run(db) == reference
            and type(kernel.run(db)) is type(reference)
            and kernel.run(db) == reference)
        fused_ms = _time(lambda: fused.run(db), repeat)
        codegen_ms = _time(lambda: kernel.run(db), repeat)
        rows.append({
            "query": name,
            "barred": name in JOIN_NEST_QUERIES,
            "fully_lowered": kernel.fully_lowered,
            "identical": identical,
            "fused_ms": round(fused_ms, 3),
            "codegen_ms": round(codegen_ms, 3),
            "speedup": round(fused_ms / codegen_ms, 2),
        })
    barred = [row for row in rows if row["barred"]]
    barred_fused = sum(row["fused_ms"] for row in barred)
    barred_codegen = sum(row["codegen_ms"] for row in barred)
    return {
        "rows": rows,
        "join_nest_fused_ms": round(barred_fused, 3),
        "join_nest_codegen_ms": round(barred_codegen, 3),
        "join_nest_speedup": round(barred_fused / barred_codegen, 2),
    }


def _family_corpus():
    """Concrete queries from the constant-varying templates, plus the
    per-skeleton instance count."""
    queries = []
    for _, template in _TEMPLATES:
        for offset in range(FAMILY_WIDTH):
            queries.append(canon(parse_obj(
                template.format(c=20 + offset))))
    return queries


def measure_warm_family(db, *, passes: int = FAMILY_PASSES) -> dict:
    """Cold (compile every concrete query per call) vs warm
    (skeleton-keyed kernel cache, bind values per call) throughput over
    ``passes`` passes of the template corpus — repeats model the
    serving hot path, where the cache claim lives.  Outcomes are
    asserted identical query-for-query — one template family errors
    under evaluation by design (the corpus also drives
    pure-optimization benchmarks), and the error must be shared too."""
    queries = _family_corpus()
    traffic = queries * passes

    start = time.perf_counter()
    cold_results = [_outcome(lambda: compile_kernel(query).run(db))
                    for query in traffic]
    cold_s = time.perf_counter() - start

    # One untimed pass populates the skeleton cache (and the kernels'
    # internal closure caches) so the timed passes measure steady-state
    # serving — the claim under test — not first-touch compilation.
    kernels: dict = {}

    def serve(query):
        skeleton, values = abstract_constants(query)
        kernel = kernels.get(skeleton)
        if kernel is None:
            kernel = kernels[skeleton] = compile_kernel(skeleton)
        return _outcome(lambda: kernel.run(db, values))

    for query in queries:
        serve(query)
    start = time.perf_counter()
    warm_results = [serve(query) for query in traffic]
    warm_s = time.perf_counter() - start

    identical = all(
        w[0] == c[0] and (w[0] == "error"
                          or (type(w[1]) is type(c[1]) and w[1] == c[1]))
        for w, c in zip(warm_results, cold_results))
    return {
        "queries": len(queries),
        "passes": passes,
        "distinct_skeletons": len(kernels),
        "identical": identical,
        "cold_qps": round(len(traffic) / cold_s, 1),
        "warm_qps": round(len(traffic) / warm_s, 1),
        "warm_speedup": round(cold_s / warm_s, 2),
    }


def _outcome(run):
    try:
        return "ok", run()
    except EvalError:
        return "error", EvalError


def measure_parity(db, *, count: int = PARITY_COUNT,
                   seed: int = PARITY_SEED) -> dict:
    """Fixed-seed generated stream: direct evaluation vs both codegen
    modes, bit-identical (type-strict) or the run fails."""
    generator = QueryGenerator(FuzzConfig(seed=seed))
    checked = good = 0
    errors = 0
    divergences = []
    for _ in range(count):
        query = generator.query()
        expected_outcome, expected = _outcome(
            lambda: eval_obj(query, db))
        if expected_outcome == "error":
            errors += 1
        for mode, columnar in (("codegen", False),
                               ("codegen-columnar", True)):
            checked += 1
            outcome, got = _outcome(
                lambda: compile_kernel(query, columnar=columnar).run(db))
            same = (outcome == expected_outcome
                    and (outcome == "error"
                         or (type(got) is type(expected)
                             and got == expected)))
            if same:
                good += 1
            elif len(divergences) < 5:
                from repro.core.pretty import pretty
                divergences.append({"mode": mode, "query": pretty(query)})
    return {
        "seed": seed, "queries": count, "checked": checked,
        "good": good, "eval_errors": errors,
        "divergences": divergences, "ok": good == checked,
    }


def _print_report(report: dict) -> None:
    timings = report["timings"]
    print(f"database: |P| = {report['config']['persons']}, "
          f"|V| = {report['config']['vehicles']}")
    print(f"{'query':<26} {'fused ms':>9} {'codegen ms':>11} "
          f"{'speedup':>8}")
    for row in timings["rows"]:
        tag = "" if row["barred"] else "  [unbarred]"
        print(f"{row['query']:<26} {row['fused_ms']:>9.2f} "
              f"{row['codegen_ms']:>11.2f} {row['speedup']:>8.1f}{tag}")
    print(f"  join/nest workload: {timings['join_nest_fused_ms']:.1f} ms"
          f" fused vs {timings['join_nest_codegen_ms']:.1f} ms codegen"
          f" = {timings['join_nest_speedup']}x"
          f" (bar: {report['min_speedup']}x)")
    family = report["warm_family"]
    print(f"  warm families: {family['warm_qps']} q/s warm vs "
          f"{family['cold_qps']} q/s cold over {family['queries']} "
          f"queries x {family['passes']} passes / "
          f"{family['distinct_skeletons']} skeletons = "
          f"{family['warm_speedup']}x (bar: "
          f"{report['warm_min_speedup']}x)")
    parity = report["parity"]
    print(f"  parity: {parity['good']}/{parity['checked']} bit-identical"
          f" over {parity['queries']} generated queries x 2 modes "
          f"(seed {parity['seed']}, {parity['eval_errors']} raise "
          f"EvalError in both)")


def _failures(report: dict) -> list[str]:
    problems = []
    for row in report["timings"]["rows"]:
        if not row["identical"]:
            problems.append(f"{row['query']}: codegen result differs "
                            "from direct evaluation")
        if row["barred"] and not row["fully_lowered"]:
            problems.append(f"{row['query']}: join/nest query fell "
                            "back to closure evaluation")
    if not report["parity"]["ok"]:
        problems.append(
            f"{report['parity']['checked'] - report['parity']['good']} "
            f"fuzz divergence(s): {report['parity']['divergences']}")
    if (report["timings"]["join_nest_speedup"]
            < report["min_speedup"]):
        problems.append(
            f"join/nest codegen speedup "
            f"{report['timings']['join_nest_speedup']}x below the "
            f"{report['min_speedup']}x bar")
    family = report["warm_family"]
    if not family["identical"]:
        problems.append("warm-family results differ from cold compiles")
    if family["warm_speedup"] < report["warm_min_speedup"]:
        problems.append(
            f"warm-family speedup {family['warm_speedup']}x below the "
            f"{report['warm_min_speedup']}x bar")
    return problems


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    banner("Codegen kernels — compiled source vs fused generators")
    if quick:
        persons, vehicles, parity_count, repeat = 200, 125, 120, 3
    else:
        persons, vehicles, parity_count, repeat = 400, 250, PARITY_COUNT, 5
    db = sized_db(persons, vehicles, seed=2026)
    report = {
        "config": {"persons": persons, "vehicles": vehicles,
                   "repeat": repeat, "quick": quick},
        "min_speedup": MIN_SPEEDUP,
        "warm_min_speedup": WARM_MIN_SPEEDUP,
        "timings": measure_bulk(db, repeat=repeat),
        "warm_family": measure_warm_family(tiny_database()),
        "parity": measure_parity(tiny_database(), count=parity_count),
    }
    _print_report(report)
    if not quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_codegen.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    problems = _failures(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK: results bit-identical, speedup bars met")
    return 1 if problems else 0


# -- pytest entry points -------------------------------------------------


def test_codegen_parity_smoke():
    """Acceptance: every benchmark query and a 60-query fuzz stream
    are bit-identical between direct evaluation and both codegen
    modes."""
    db = sized_db(40, 25, seed=2026)
    timings = measure_bulk(db, repeat=1)
    assert all(row["identical"] for row in timings["rows"]), timings
    parity = measure_parity(tiny_database(), count=60)
    assert parity["ok"], parity["divergences"]


def test_warm_family_reuses_kernels():
    """The skeleton cache compiles once per family and stays
    bit-identical with cold compilation."""
    family = measure_warm_family(tiny_database())
    assert family["identical"]
    assert family["distinct_skeletons"] < family["queries"]


def test_bulk_kernels_fully_lowered():
    """The bulk workload must compile to straight-line kernels, not
    the closure fallback — otherwise the speedup claim measures
    nothing."""
    for text in BULK_QUERIES.values():
        kernel = compile_kernel(canon(parse_obj(text)))
        assert kernel.fully_lowered, text


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
