"""Experiment F1 — Figure 1: the AQUA transformations T1 and T2,
performed by the baseline engine whose rules carry head/body routines.

Regenerates the figure (source => target for both transformations),
verifies the rewritten queries against evaluation, and measures the
baseline's rewrite cost for comparison with the KOLA engine (F4).
"""

from __future__ import annotations

from repro.aqua.analysis import alpha_equal
from repro.aqua.eval import aqua_eval
from repro.aqua.rules import AquaRuleEngine, T1_COMPOSE_APP, T2_SPLIT_SEL
from repro.aqua.terms import aqua_pretty
from benchmarks.conftest import banner


def test_figure1_report(benchmark, queries, db_small):
    banner("Figure 1 — AQUA transformations T1 and T2 (baseline engine, "
           "rules with code)")
    engine = AquaRuleEngine()

    for label, source, target, rule in (
            ("T1", queries.t1_source_aqua, queries.t1_target_aqua,
             T1_COMPOSE_APP),
            ("T2", queries.t2_source_aqua, queries.t2_target_aqua,
             T2_SPLIT_SEL)):
        transformed, applied = engine.normalize(source, [rule])
        assert alpha_equal(transformed, target)
        assert aqua_eval(transformed, db_small) == aqua_eval(source,
                                                             db_small)
        print(f"{label}: {aqua_pretty(source)}")
        print(f"  => {aqua_pretty(transformed)}   (rule {applied[0]}, "
              "body routine = expression composition/decomposition)")

    def run_both():
        engine.normalize(queries.t1_source_aqua, [T1_COMPOSE_APP])
        engine.normalize(queries.t2_source_aqua, [T2_SPLIT_SEL])

    benchmark(run_both)


def test_t1_rewrite_cost(benchmark, queries):
    engine = AquaRuleEngine()
    result = benchmark(engine.normalize, queries.t1_source_aqua,
                       [T1_COMPOSE_APP])
    assert result[1] == ["T1-compose-app"]


def test_t2_rewrite_cost(benchmark, queries):
    engine = AquaRuleEngine()
    result = benchmark(engine.normalize, queries.t2_source_aqua,
                       [T2_SPLIT_SEL])
    assert result[1] == ["T2-split-sel"]
