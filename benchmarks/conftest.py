"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table/figure/claim of the paper
(see DESIGN.md section 3 for the index).  Benchmarks print a paper-style
summary (series/rows) in addition to pytest-benchmark's timing table;
EXPERIMENTS.md records the paper-claim vs measured outcome.
"""

from __future__ import annotations

import pytest

from repro.rewrite.engine import Engine
from repro.rules.registry import standard_rulebase
from repro.schema.generator import GeneratorConfig, generate_database
from repro.workloads.queries import paper_queries


@pytest.fixture(scope="session")
def rulebase():
    return standard_rulebase()


@pytest.fixture(scope="session")
def queries():
    return paper_queries()


@pytest.fixture(scope="session")
def db():
    """The default benchmark database (|P| = 100, |V| = 60)."""
    return generate_database(GeneratorConfig(
        n_persons=100, n_vehicles=60, n_addresses=25, seed=2026))


@pytest.fixture(scope="session")
def db_small():
    return generate_database(GeneratorConfig(
        n_persons=30, n_vehicles=20, n_addresses=10, seed=2026))


def sized_db(n_persons: int, n_vehicles: int | None = None, seed: int = 1):
    """Helper for size sweeps."""
    return generate_database(GeneratorConfig(
        n_persons=n_persons,
        n_vehicles=n_vehicles if n_vehicles is not None else n_persons,
        n_addresses=max(5, n_persons // 4), seed=seed))


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
