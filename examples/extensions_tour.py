"""A tour of the Section 6 extensions.

The paper closes with its "current efforts": bags and lists as further
bulk types, and COKO blocks for join optimization, predicate ordering
and semantic optimization.  This example exercises each one, built out
in this reproduction.

Run:  python examples/extensions_tour.py
"""

from repro.coko.compiler import HIDDEN_JOIN_COKO, compile_coko
from repro.coko.stdblocks import (block_defer_dupelim,
                                  block_predicate_ordering,
                                  block_semantic_optimization)
from repro.core import constructors as C
from repro.core.eval import eval_obj
from repro.core.parser import parse_fun, parse_obj
from repro.core.pretty import pretty
from repro.larch.prover import prove_rule
from repro.optimizer.indexes import IndexCatalog
from repro.optimizer.optimizer import Optimizer
from repro.rewrite.engine import Engine
from repro.rules.preconditions import AnnotationOracle
from repro.rules.registry import standard_rulebase
from repro.schema.generator import GeneratorConfig, generate_database


def main() -> None:
    base = standard_rulebase()
    db = generate_database(GeneratorConfig(n_persons=80, n_vehicles=40,
                                           seed=21))

    print("== bags: defer duplicate elimination ==")
    query = parse_obj("iterate(Kp(T), city) o flat o iterate(Kp(T), grgs)"
                      " ! P")
    deferred = block_defer_dupelim().transform(query, base)
    print("set form:", pretty(query))
    print("bag form:", pretty(deferred))
    assert eval_obj(deferred, db) == eval_obj(query, db)
    print("one distinct at the end; results verified equal\n")

    print("== lists: ORDER BY through the optimizer ==")
    optimized = Optimizer(base).optimize(
        "select p from p in P where p.age > 60 order by p.age", db)
    elders = optimized.execute(db)
    print("untangled:", pretty(optimized.untangled))
    print("ages     :", [p.get("age") for p in elders], "\n")

    print("== predicate ordering (Ranked strategy) ==")
    messy = parse_obj("iterate(in @ <id, child> & Cp(lt, 45) @ age, id)"
                      " ! P")
    ordered = block_predicate_ordering().transform(messy, base)
    print("before:", pretty(messy))
    print("after :", pretty(ordered))
    assert eval_obj(ordered, db) == eval_obj(messy, db)
    print("cheap comparison now leads the conjunction\n")

    print("== semantic optimization (annotation-guarded rules) ==")
    db.schema.register_function("pid", lambda p: p.oid, "Person", "Int")
    oracle = AnnotationOracle()
    oracle.declare("injective", C.prim("pid"))
    term = parse_fun("iterate(Kp(T), pid) o intersect")
    rewritten = block_semantic_optimization().transform(
        term, base, Engine(oracle))
    print("with 'pid is a key' declared:")
    print(f"  {pretty(term)}  =>  {pretty(rewritten)}\n")

    print("== index scan ==")
    catalog = IndexCatalog()
    catalog.build(db, "P", C.prim("age"))
    optimizer = Optimizer(base, catalog=catalog)
    by_age = optimizer.optimize("select p from p in P where p.age == 30",
                                db)
    print(by_age.plan.explain())
    print("rows:", len(by_age.execute(db)), "\n")

    print("== the COKO module generator ==")
    module = compile_coko(HIDDEN_JOIN_COKO, base, "hidden-join")
    print(module.describe().splitlines()[0])
    from repro.workloads.queries import paper_queries
    assert module.apply(paper_queries().kg1) == paper_queries().kg2
    print("compiled module reproduces the five-step pipeline\n")

    print("== the equational prover ==")
    proof = prove_rule(base.get("r12"),
                       [base.get("r11"), base.get("r2"), base.get("r5")])
    print("deriving the paper's rule 12 from rule 11 + identities:")
    print(proof.render())


if __name__ == "__main__":
    main()
