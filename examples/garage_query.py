"""The Garage Query end to end (Figures 3, 7, 8 of the paper).

Starting from the AQUA form ("associate each vehicle with the set of
addresses where it might be located"), this example:

1. translates it to KOLA — reproducing Figure 3's KG1 exactly;
2. runs the five-step hidden-join untangling strategy, printing every
   intermediate form with its justifying rules — reproducing KG1a, KG1b,
   KG1c and the final KG2;
3. executes both forms, compares results and timing.

Run:  python examples/garage_query.py
"""

import time

from repro.aqua.eval import aqua_eval
from repro.aqua.terms import aqua_pretty
from repro.coko.blocks import run_blocks
from repro.coko.hidden_join import hidden_join_blocks
from repro.core.eval import eval_obj
from repro.core.pretty import pretty_multiline
from repro.optimizer.physical import recognize_join_nest
from repro.rewrite.engine import Engine
from repro.rewrite.trace import Derivation
from repro.rules.registry import standard_rulebase
from repro.schema.generator import GeneratorConfig, generate_database
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import garage_shape


def main() -> None:
    rulebase = standard_rulebase()
    db = generate_database(GeneratorConfig(n_persons=120, n_vehicles=80,
                                           n_addresses=30, seed=11))

    garage = garage_shape()
    print("AQUA   :", aqua_pretty(garage))
    kg1 = translate_query(garage)
    print("\nKOLA (this is Figure 3's KG1, verbatim):")
    print(pretty_multiline(kg1))

    print("\n--- five-step untangling (Section 4.1) ---")
    engine = Engine()
    derivation = Derivation("garage query untangling")
    term = kg1
    for block in hidden_join_blocks():
        before = len(derivation)
        term = block.transform(term, rulebase, engine, derivation)
        steps = " ".join(
            step.justification for step in list(derivation)[before:])
        print(f"\n[{block.name}]  rules fired: {steps or '(none)'}")
        print(pretty_multiline(term))
    kg2 = term

    print("\n--- execution ---")
    start = time.perf_counter()
    nested_result = aqua_eval(garage, db)
    nested_ms = (time.perf_counter() - start) * 1000

    plan = recognize_join_nest(kg2)
    assert plan is not None
    print("physical plan:")
    print(plan.explain())
    start = time.perf_counter()
    join_result = plan.execute(db)
    join_ms = (time.perf_counter() - start) * 1000

    assert join_result == eval_obj(kg1, db) == nested_result
    print(f"\nnested evaluation: {nested_ms:8.2f} ms")
    print(f"join-plan        : {join_ms:8.2f} ms "
          f"({nested_ms / join_ms:.1f}x faster)")
    print(f"result: {len(join_result)} (vehicle, garage-set) pairs; "
          "all three evaluations agree")


if __name__ == "__main__":
    main()
