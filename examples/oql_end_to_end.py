"""OQL text to executed plan: the whole optimizer pipeline.

Each query is parsed (OQL subset), translated to KOLA, simplified and
untangled with the declarative rule pool, planned with the cost model,
and executed — with every stage printed.

Run:  python examples/oql_end_to_end.py
"""

from repro.aqua.eval import aqua_eval
from repro.core.pretty import pretty
from repro.optimizer.optimizer import Optimizer
from repro.schema.generator import GeneratorConfig, generate_database
from repro.translate.oql import parse_oql

QUERIES = [
    # a simple projection with a path expression
    "select p.addr.city from p in P",
    # selection + projection (T2's shape)
    "select p.age from p in P where p.age > 25",
    # a hidden join: correlate persons with older persons
    "select [a, (select q from q in P where q.age > a.age)] from a in P",
    # the Garage Query in OQL
    "select [v, (select g from p in P, g in p.grgs where v in p.cars)]"
    " from v in V",
]


def main() -> None:
    db = generate_database(GeneratorConfig(n_persons=60, n_vehicles=40,
                                           n_addresses=15, seed=4))
    optimizer = Optimizer()

    for text in QUERIES:
        print("=" * 72)
        print("OQL       :", text)
        optimized = optimizer.optimize(text, db)
        print("KOLA      :", pretty(optimized.initial))
        if optimized.untangled != optimized.initial:
            print("optimized :", pretty(optimized.untangled))
            print("steps     :", " ".join(optimized.derivation.rules_used()))
        print("plan      :",
              optimized.plan.explain().splitlines()[0].strip())
        print(f"est. cost : {optimized.estimated_cost:.0f}")

        result = optimized.execute(db)
        reference = aqua_eval(parse_oql(text), db)
        assert result == reference, "plan disagrees with naive evaluation!"
        print(f"result    : {len(result)} rows (verified against naive "
              "evaluation)")
        print()


if __name__ == "__main__":
    main()
