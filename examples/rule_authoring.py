"""Authoring new optimizer rules — and having the machine check them.

The paper's thesis is that rules over KOLA are small declarative
equations that can be stated, proved and composed without writing code.
This example walks the full authoring loop:

1. write a rule in the KOLA text syntax;
2. the constructor type-checks it (both sides must share a type);
3. the Larch-substitute checker model-checks it on random well-typed
   instantiations — a wrong rule is refuted with a counterexample;
4. register it, group it into a COKO block, and fire it on a query.

Run:  python examples/rule_authoring.py
"""

from repro.coko.blocks import RuleBlock
from repro.coko.strategy import Exhaust
from repro.core.errors import TypeInferenceError, VerificationError
from repro.core.parser import parse_obj
from repro.core.pretty import pretty
from repro.core.terms import Sort
from repro.larch.checker import check_rule
from repro.rewrite.rule import rule
from repro.rules.registry import standard_rulebase
from repro.schema.generator import tiny_database
from repro.core.eval import eval_obj


def main() -> None:
    rulebase = standard_rulebase()

    # -- 1. a sound rule: selections commute --------------------------------
    print("authoring: iterate(p, id) o iterate(q, id) == "
          "iterate(q, id) o iterate(p, id)")
    commute = rule("select-commute",
                   "iterate($p, id) o iterate($q, id)",
                   "iterate($q, id) o iterate($p, id)")
    report = check_rule(commute, trials=300)
    print(f"  verified on {report.trials} random instantiations\n")

    # -- 2. a wrong rule is refuted ------------------------------------------
    print("authoring a WRONG rule: iterate(p, f) o iterate(q, g) == "
          "iterate(p & (q @ g)...  (predicates swapped)")
    bad = rule("bad-fusion",
               "iterate($p, $f) o iterate($q, $g)",
               "iterate($p & ($q @ $g), $f o $g)", bidirectional=False)
    try:
        check_rule(bad, trials=300)
    except VerificationError as refutation:
        print("  REFUTED, as it should be. Counterexample:")
        for line in str(refutation).splitlines()[1:]:
            print("   ", line)
    print()

    # -- 3. an ill-typed rule never gets built --------------------------------
    print("authoring an ILL-TYPED rule: flat o $f == $f")
    try:
        rule("bad-typing", "flat o $f", "$f")
    except TypeInferenceError as error:
        print(f"  rejected at construction: {error}\n")

    # -- 4. use the new rule through a COKO block ------------------------------
    rulebase.add(commute, ["examples"])
    block = RuleBlock(
        name="reorder-selections",
        uses=("select-commute",),
        strategy=Exhaust("select-commute", max_steps=1),
        description="swap adjacent selections (e.g. to run the more "
                    "selective one first)")
    query = parse_obj(
        "iterate(Cp(lt, 50) @ age, id) o iterate(Cp(lt, 18) @ age, id) ! P")
    swapped = block.transform(query, rulebase)
    print("before:", pretty(query))
    print("after :", pretty(swapped))
    db = tiny_database()
    assert eval_obj(query, db) == eval_obj(swapped, db)
    print("results agree on the test database.")


if __name__ == "__main__":
    main()
