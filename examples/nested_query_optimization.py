"""Nested-query optimization: the Figure 2 / Figure 6 story.

Queries A3 and A4 are *structurally identical* in AQUA — they differ
only in which variable the inner predicate mentions — yet only A4 admits
code motion.  Over the variable-based representation that decision needs
a head routine performing free-variable analysis; over KOLA the two
queries translate to *structurally different* terms (K3 projects ``pi2``
where K4 projects ``pi1``) and the pure rewrite rules sort everything
out by matching alone.

Run:  python examples/nested_query_optimization.py
"""

from repro.aqua.eval import aqua_eval
from repro.aqua.rules import CODE_MOTION
from repro.aqua.terms import aqua_pretty
from repro.coko.stdblocks import block_code_motion, block_env_free_select
from repro.core.eval import eval_obj
from repro.core.pretty import pretty
from repro.rewrite.trace import Derivation
from repro.rules.registry import standard_rulebase
from repro.schema.generator import tiny_database
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.queries import paper_queries


def main() -> None:
    rulebase = standard_rulebase()
    queries = paper_queries()
    db = tiny_database()

    print("=== the AQUA view (Figure 2) ===")
    print("A3:", aqua_pretty(queries.a3_aqua))
    print("A4:", aqua_pretty(queries.a4_aqua))
    print("structurally identical, apart from the variable in the inner "
          "predicate.")
    print("head routine (free-variable analysis) says:",
          "A4 transformable," if CODE_MOTION.head(queries.a4_aqua) else "?",
          "A3 not." if CODE_MOTION.head(queries.a3_aqua) is None else "?")

    print("\n=== the KOLA view (Section 3.2) ===")
    k3 = translate_query(queries.a3_aqua)
    k4 = translate_query(queries.a4_aqua)
    print("K3:", pretty(k3))
    print("K4:", pretty(k4))
    print("the difference is structural now: age o pi2 vs age o pi1.")

    print("\n=== Figure 6: rule-based code motion on K4 ===")
    derivation = Derivation("K4")
    k4_moved = block_code_motion().transform(k4, rulebase,
                                             derivation=derivation)
    print(derivation.render())
    assert eval_obj(k4_moved, db) == aqua_eval(queries.a4_aqua, db)

    print("\n=== K3: rule 15 cannot fire (p @ pi2, not p @ pi1) ===")
    k3_derivation = Derivation("K3")
    k3_mid = block_code_motion().transform(k3, rulebase,
                                           derivation=k3_derivation)
    print(k3_derivation.render())
    print("no 'con' appears — the transformation stopped, with the query "
          "already simplified.")

    print("\n=== the alternative strategy for K3 (Section 4.2) ===")
    k3_final = block_env_free_select().transform(k3_mid, rulebase)
    print("K3 =>", pretty(k3_final))
    assert eval_obj(k3_final, db) == aqua_eval(queries.a3_aqua, db)
    print("the environment-free inner loop became a plain selection "
          "pushed into p.child; all results verified equal.")


if __name__ == "__main__":
    main()
