"""Regenerate every figure and table of the paper, in order.

Run:  python examples/reproduce_paper.py

Prints Tables 1-2 (semantics conformance), Figures 1-8 (queries,
transformations, derivations — each verified semantically on a generated
database as it is printed), and the Section 4.2 size table.  This is the
human-readable companion to ``pytest benchmarks/``; every assertion here
is also enforced by the test suite.
"""

from repro.aqua.eval import aqua_eval
from repro.aqua.rules import AquaRuleEngine, CODE_MOTION, T1_COMPOSE_APP, \
    T2_SPLIT_SEL
from repro.aqua.terms import aqua_pretty
from repro.coko.hidden_join import hidden_join_blocks
from repro.coko.stdblocks import block_code_motion, block_t1k, block_t2k
from repro.core.eval import eval_obj
from repro.core.pretty import pretty, pretty_multiline
from repro.core.signature import REGISTRY
from repro.rewrite.trace import Derivation
from repro.rules.registry import standard_rulebase
from repro.schema.generator import GeneratorConfig, generate_database
from repro.translate.aqua_to_kola import translate_query
from repro.translate.metrics import measure_translation
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries


def section(title: str) -> None:
    print()
    print("=" * 74)
    print(title)
    print("=" * 74)


def main() -> None:
    base = standard_rulebase()
    queries = paper_queries()
    db = generate_database(GeneratorConfig(seed=1996))

    section("Tables 1 and 2 — KOLA's operators and semantics")
    for group, names in (
            ("primitive functions", ["id", "pi1", "pi2"]),
            ("primitive predicates", ["eq", "lt", "leq", "gt", "isin"]),
            ("function formers", ["compose", "pair", "cross", "const_f",
                                  "curry_f", "cond"]),
            ("predicate formers", ["oplus", "conj", "disj", "inv", "neg",
                                   "const_p", "curry_p"]),
            ("query formers", ["flat", "iterate", "iter", "join", "nest",
                               "unnest"])):
        print(f"\n  {group}:")
        for name in names:
            print(f"    {REGISTRY[name].doc}")

    section("Figure 1 — AQUA transformations T1 and T2 (baseline: rules "
            "with code)")
    engine = AquaRuleEngine()
    for label, source, rule in (("T1", queries.t1_source_aqua,
                                 T1_COMPOSE_APP),
                                ("T2", queries.t2_source_aqua,
                                 T2_SPLIT_SEL)):
        result, _ = engine.normalize(source, [rule])
        assert aqua_eval(result, db) == aqua_eval(source, db)
        print(f"{label}: {aqua_pretty(source)}")
        print(f"  => {aqua_pretty(result)}")

    section("Figure 2 — structurally identical nested queries A3 and A4")
    print("A3:", aqua_pretty(queries.a3_aqua))
    print("A4:", aqua_pretty(queries.a4_aqua))
    print("head routine (free-variable analysis):",
          "A4 transformable;" if CODE_MOTION.head(queries.a4_aqua)
          else "?", "A3 not."
          if CODE_MOTION.head(queries.a3_aqua) is None else "?")

    section("Figure 3 — the Garage Query: KG1 (translated) and KG2")
    kg1 = translate_query(queries.garage_aqua)
    assert kg1 == queries.kg1
    print("KG1 (reproduced verbatim by the translator):")
    print(pretty_multiline(kg1))
    print("\nKG2:")
    print(pretty_multiline(queries.kg2))
    assert eval_obj(kg1, db) == eval_obj(queries.kg2, db)
    print("\nequivalent on the generated database: yes")

    section("Figure 4 — derivations T1K and T2K (KOLA rules, no code)")
    for block, source in ((block_t1k(), queries.t1k_source),
                          (block_t2k(), queries.t2k_source)):
        derivation = Derivation(block.name)
        block.transform(source, base, derivation=derivation)
        derivation.verify([db])
        print(derivation.render())
        print()

    section("Figure 6 — rule-based transformation of K4 (K3 blocked)")
    derivation = Derivation("K4")
    result = block_code_motion().transform(queries.k4, base,
                                           derivation=derivation)
    derivation.verify([db])
    print(derivation.render())
    k3_result = block_code_motion().transform(queries.k3, base)
    assert not any(n.op == "cond" for n in k3_result.subterms())
    print("\nK3: rule 15 never fires — blocked structurally, no "
          "environment analysis")

    section("Figure 7 + Section 4.1 — hidden joins untangled at every "
            "depth")
    print(f"{'n':>3} {'steps':>6} {'reaches nest-of-join':>22}")
    from repro.coko.blocks import run_blocks
    from repro.optimizer.physical import recognize_join_nest
    for depth in (1, 2, 3, 4, 5):
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth)))
        derivation = Derivation()
        final = run_blocks(hidden_join_blocks(), query, base,
                           derivation=derivation)
        ok = recognize_join_nest(final) is not None
        assert ok
        print(f"{depth:>3} {len(derivation):>6} {'yes':>22}")

    section("Figure 8 / Section 4.1 — the Garage Query, step by step")
    term = queries.kg1
    for block in hidden_join_blocks():
        term = block.transform(term, base)
        print(f"\n[{block.name}]")
        print(pretty_multiline(term))
    assert term == queries.kg2
    print("\nreached KG2 exactly")

    section("Section 4.2 — translation size (O(mn), observed ratios)")
    print(f"{'n (depth)':>10} {'AQUA':>6} {'KOLA':>6} {'ratio':>6}")
    for depth in (1, 2, 3, 4, 5, 6):
        metrics = measure_translation(hidden_join_family(
            HiddenJoinSpec(depth=depth)))
        assert metrics.kola_nodes <= 2 * metrics.bound
        print(f"{depth:>10} {metrics.aqua_nodes:>6} "
              f"{metrics.kola_nodes:>6} {metrics.ratio:>6.2f}")

    section("Summary")
    print(f"rule pool: {len(base)} rules, all machine-verified "
          "(pytest tests/test_rule_pool.py)")
    print("every printed form above was re-verified semantically on a "
          "generated database")


if __name__ == "__main__":
    main()
