"""Quickstart: build, run, print, parse and rewrite KOLA queries.

Run:  python examples/quickstart.py
"""

from repro.core import (compose, const_p, invoke, iterate, prim, pretty,
                        run_query, setname, true)
from repro.core.parser import parse_obj
from repro.core.types import infer
from repro.rewrite.engine import Engine
from repro.rules.registry import standard_rulebase
from repro.schema import generate_database
from repro.schema.paper_schema import paper_schema


def main() -> None:
    # A deterministic synthetic database over the paper's schema:
    # Persons (collection P) with age/addr/child/cars/grgs, Vehicles (V),
    # Addresses (A).
    db = generate_database()

    # -- build a query with the constructor API -----------------------------
    # "the cities inhabited by people in P" (Figure 1's T1 target):
    #     iterate(Kp(T), city o addr) ! P
    cities = invoke(
        iterate(const_p(true()), compose(prim("city"), prim("addr"))),
        setname("P"))
    print("query:  ", pretty(cities))
    print("type:   ", infer(cities, paper_schema()))
    print("result: ", sorted(run_query(cities, db)))
    print()

    # -- or parse the same query from text -----------------------------------
    same = parse_obj("iterate(Kp(T), city o addr) ! P")
    assert same == cities

    # -- rewrite with the paper's declarative rules ---------------------------
    # The unfused form maps addr first, then city (two passes):
    unfused = parse_obj("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P")
    rulebase = standard_rulebase()
    engine = Engine()
    fused = engine.normalize(unfused, [rulebase.get("r11"),
                                       rulebase.get("r6"),
                                       rulebase.get("r5")])
    print("unfused:", pretty(unfused))
    print("fused:  ", pretty(fused))
    assert fused == cities
    assert run_query(fused, db) == run_query(unfused, db)
    print("rules 11/6/5 fused the pipeline; results agree.")


if __name__ == "__main__":
    main()
