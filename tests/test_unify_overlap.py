"""Tests for unification, overlap/critical-pair analysis, and the
equational prover."""

import pytest

from repro.core import constructors as C
from repro.core.parser import parse_fun, parse_pred
from repro.core.terms import Sort, fun_var, meta, pred_var
from repro.larch.prover import EquationalProver, prove_rule
from repro.rewrite.overlap import (Overlap, analyze_pool,
                                   check_joinability, find_overlaps)
from repro.rewrite.rule import rule
from repro.rewrite.unify import rename_apart, resolve, unify


class TestUnify:
    def test_identical_ground(self):
        assert unify(C.id_(), C.id_()) == {}

    def test_var_binds(self):
        subst = unify(fun_var("f"), C.prim("age"))
        assert subst == {"f": C.prim("age")}

    def test_symmetric(self):
        subst = unify(C.prim("age"), fun_var("f"))
        assert subst == {"f": C.prim("age")}

    def test_var_var(self):
        subst = unify(fun_var("f"), fun_var("g"))
        assert subst is not None
        assert resolve(fun_var("f"), subst) == resolve(fun_var("g"), subst)

    def test_structural(self):
        a = parse_fun("iterate($p, $f)")
        b = parse_fun("iterate(Kp(T), $g)")
        subst = unify(a, rename_apart(b, "_2"))
        assert subst is not None
        assert resolve(a, subst) == resolve(rename_apart(b, "_2"), subst)

    def test_clash(self):
        assert unify(C.pi1(), C.pi2()) is None

    def test_occurs_check(self):
        looped = C.compose(fun_var("f"), C.id_())
        assert unify(fun_var("f"), looped) is None

    def test_sort_respected(self):
        assert unify(fun_var("f"), C.eq()) is None
        assert unify(pred_var("p"), fun_var("f")) is None
        assert unify(meta("a"), C.eq()) is not None

    def test_rename_apart(self):
        term = parse_fun("iterate($p, $f)")
        renamed = rename_apart(term, "_x")
        names = {name for name, _ in renamed.metavars()}
        assert names == {"p_x", "f_x"}

    def test_two_sided_binding(self):
        a = C.conj(pred_var("p"), C.eq())
        b = C.conj(C.lt(), pred_var("q2"))
        subst = unify(a, b)
        assert subst == {"p": C.lt(), "q2": C.eq()}


class TestOverlap:
    def test_negneg_demorgan_overlap_joinable(self, rulebase):
        """~(~(p & q)) can be rewritten by neg-neg at the root or by
        de Morgan inside; the critical pair rejoins."""
        neg_neg = rulebase.get("neg-neg")
        de_morgan = rulebase.get("de-morgan-and")
        overlaps = find_overlaps(neg_neg, de_morgan)
        assert len(overlaps) == 1
        overlap = overlaps[0]
        assert overlap.path == (0,)
        report = check_joinability(
            overlap,
            [rulebase.get("de-morgan-or"), rulebase.get("neg-neg")])
        assert report.joinable
        assert "JOINABLE" in report.describe()

    def test_trivially_equal_pairs_filtered(self, rulebase):
        overlaps = find_overlaps(rulebase.get("r5"), rulebase.get("r5b"))
        assert overlaps == []  # both rewrite the peak to the same term

    def test_non_joinable_detected(self):
        """Two made-up rules that genuinely diverge."""
        to_a = rule("to-a", "con(Kp(T), $f, $g)", "$f",
                    bidirectional=False)
        drop_then = rule("drop-then", "con($p, $f, $g)",
                         "con($p, $f, $f)", bidirectional=False,
                         note="deliberately bogus for this test")
        overlaps = find_overlaps(drop_then, to_a)
        assert overlaps
        report = check_joinability(overlaps[0], [])
        assert not report.joinable

    def test_no_overlap_between_unrelated(self, rulebase):
        assert find_overlaps(rulebase.get("r9"), rulebase.get("r18")) == []

    def test_self_overlap_root_skipped(self, rulebase):
        r11 = rulebase.get("r11")
        overlaps = find_overlaps(r11, r11)
        assert all(o.path != () for o in overlaps)

    def test_analyze_pool_smoke(self, rulebase):
        sample = [rulebase.get(name) for name in
                  ("neg-neg", "de-morgan-and", "de-morgan-or", "r5",
                   "r5b", "conj-idem")]
        reports = analyze_pool(sample, rulebase.group("cleanup")
                               + [rulebase.get("neg-neg"),
                                  rulebase.get("de-morgan-or"),
                                  rulebase.get("de-morgan-and")],
                               max_pairs=50)
        assert all(isinstance(r.joinable, bool) for r in reports)


class TestProver:
    def test_rule12_from_rule11(self, rulebase):
        proof = prove_rule(rulebase.get("r12"),
                           [rulebase.get("r11"), rulebase.get("r2"),
                            rulebase.get("r5")])
        assert proof is not None
        rendered = proof.render()
        assert "[11]" in rendered
        assert proof.length >= 2

    def test_r5b_from_commutativity(self, rulebase):
        proof = prove_rule(rulebase.get("r5b"),
                           [rulebase.get("conj-comm"), rulebase.get("r5")])
        assert proof is not None

    def test_cross_id_from_pair_laws(self, rulebase):
        """(id >< id) == id via cross-intro reversed and rule 4... or any
        route the pool offers."""
        proof = prove_rule(
            rulebase.get("cross-id"),
            [rulebase.get("cross-intro"), rulebase.get("r1"),
             rulebase.get("r2"), rulebase.get("r4")])
        assert proof is not None

    def test_reflexive_goal(self, rulebase):
        prover = EquationalProver([rulebase.get("r1")])
        proof = prover.prove(C.id_(), C.id_())
        assert proof is not None and proof.length == 0

    def test_unprovable_within_depth(self, rulebase):
        prover = EquationalProver([rulebase.get("r1")], max_depth=2)
        assert prover.prove(parse_fun("age"), parse_fun("city")) is None

    def test_proof_is_sound(self, rulebase, tiny_db):
        """Spot-check: instantiate the proved equation and evaluate."""
        from repro.core.eval import apply_fn
        from repro.core.values import kset
        from repro.rewrite.pattern import instantiate
        proof = prove_rule(rulebase.get("r12"),
                           [rulebase.get("r11"), rulebase.get("r2"),
                            rulebase.get("r5")])
        bindings = {"p": C.curry_p(C.lt(), C.lit(20)), "f": C.prim("age")}
        lhs = instantiate(proof.lhs, bindings)
        rhs = instantiate(proof.rhs, bindings)
        persons = tiny_db.collection("P")
        assert (apply_fn(lhs, persons, tiny_db)
                == apply_fn(rhs, persons, tiny_db))
