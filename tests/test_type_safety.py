"""Tests for the rewrite type-safety mechanism.

Found by derivation fuzzing: in an *untyped* matching engine, a rule
whose right-hand side has a more specific type than its left-hand side
can rewrite a position into an ill-typed term.  Two safeguards now
exist:

* **ground narrowing** (e.g. reversing rule 4, ``id => <pi1, pi2>``) is
  refused at construction/reversal time;
* **metavariable-attributable narrowing** (e.g. rule 19, whose ``$B``
  must be set-valued) flags the rule ``needs_typed_apply``: the engine
  type-checks each instantiation and silently skips ill-typed ones.

The paper never hits this because its algebra is typed throughout
("weaker typing for algebra correctness" was the known risk of a Python
reproduction — this is the mitigation).
"""

import pytest

from repro.core import constructors as C
from repro.core.errors import RewriteError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.rewrite.engine import Engine
from repro.rewrite.rule import rule
from repro.schema.generator import tiny_database


class TestGroundNarrowingRefused:
    def test_rule4_not_reversible(self, rulebase):
        with pytest.raises(RewriteError, match="more polymorphic"):
            rulebase.get("r4").reversed()

    def test_rule18_not_reversible(self, rulebase):
        with pytest.raises(RewriteError, match="more polymorphic"):
            rulebase.get("r18").reversed()

    def test_direct_construction_refused(self):
        with pytest.raises(RewriteError, match="more polymorphic"):
            rule("bad-narrow", "id", "<pi1, pi2>")

    def test_opt_out_for_negative_examples(self):
        narrowing = rule("narrow-demo", "id", "<pi1, pi2>",
                         bidirectional=False, allow_type_narrowing=True)
        assert not narrowing.forward_type_safe

    def test_safe_reversals_still_work(self, rulebase):
        assert rulebase.get("r12").reversed() is not None
        assert rulebase.get("r11").reversed() is not None


class TestTypedApply:
    def test_rule19_flagged(self, rulebase):
        assert rulebase.get("r19").needs_typed_apply
        assert not rulebase.get("r11").needs_typed_apply

    def test_rule19_applies_to_set_valued_b(self, rulebase, engine):
        query = parse_obj("iterate(Kp(T), <id, Kf(P)>) ! V")
        assert engine.rewrite_once(query, [rulebase.get("r19")]) is not None

    def test_rule19_skips_non_set_b(self, rulebase, engine, tiny_db):
        """The hazard case: $B bound to a scalar.  The untyped match
        succeeds, but the typed-apply gate rejects the instantiation
        (joining against the integer 5 is nonsense)."""
        query = parse_obj("iterate(Kp(T), <id, Kf(5)>) ! P")
        assert engine.rewrite_once(query, [rulebase.get("r19")]) is None
        # and the query still evaluates fine as-is
        result = eval_obj(query, tiny_db)
        assert all(pair.snd == 5 for pair in result)

    def test_rule19_skips_non_set_b_under_peel(self, rulebase, engine):
        query = parse_obj(
            "iterate(Kp(T), pi1) o iterate(Kp(T), <id, Kf(\"x\")>) ! P")
        assert engine.rewrite_once(query, [rulebase.get("r19")]) is None

    def test_fuzz_regression_rule19_scalar(self, rulebase, tiny_db):
        """End-to-end: normalizing with the whole fig8 group must not
        corrupt a query whose Kf wraps a scalar."""
        engine = Engine()
        query = parse_obj("iterate(Kp(T), <id, Kf(7)>) ! P")
        reference = eval_obj(query, tiny_db)
        result = engine.normalize(query, rulebase.group("fig8"))
        assert eval_obj(result, tiny_db) == reference
