"""Property suite: fused execution is observationally identical to the
direct operational-semantics evaluator.

Two sources of queries:

* Hypothesis draws from :func:`repro.fuzz.strategies.kola_queries` —
  the same grammar-directed generator the fuzz oracle replays, run
  against the generator-closure path, the columnar fast path, and the
  codegen source-kernel backend (plain and columnar-spliced);
* every anchor in ``tests/corpus/`` — the regression corpus of
  queries that once exposed a divergence anywhere in the stack.

Identity is *type-strict*: a ``KBag`` result must come back as a
``KBag`` with the same multiplicities, an ``int`` must not come back as
a ``bool``, and a query that raises ``EvalError`` under direct
evaluation must raise ``EvalError`` through the fused pipeline too.
"""

import pytest
from hypothesis import given, settings

from repro.core.errors import EvalError
from repro.core.eval import eval_obj
from repro.exec import compile_executable, compile_kernel
from repro.fuzz.corpus import load_all
from repro.fuzz.strategies import kola_queries
from repro.schema.generator import tiny_database

DB = tiny_database()


def _identical(a, b):
    return type(a) is type(b) and a == b


def _direct(query):
    """(outcome, value) under the tree-walking evaluator."""
    try:
        return "ok", eval_obj(query, DB)
    except EvalError as err:
        return "error", type(err)


def _fused(query, columnar):
    try:
        return "ok", compile_executable(query, columnar=columnar).run(DB)
    except EvalError as err:
        return "error", type(err)


def _codegen(query, columnar):
    try:
        return "ok", compile_kernel(query, columnar=columnar).run(DB)
    except EvalError as err:
        return "error", type(err)


def _assert_agrees(query, columnar, run=_fused, label="fused"):
    expected_outcome, expected = _direct(query)
    outcome, got = run(query, columnar)
    assert outcome == expected_outcome, (
        f"outcome diverged on {query!r}: direct={expected_outcome} "
        f"{label}={outcome} ({got!r})")
    if expected_outcome == "ok":
        assert _identical(got, expected), (
            f"value diverged on {query!r}: direct={expected!r} "
            f"{label}={got!r}")


def _assert_codegen_agrees(query, columnar):
    _assert_agrees(query, columnar, run=_codegen, label="codegen")


class TestGeneratedQueries:
    @settings(max_examples=150, deadline=None)
    @given(query=kola_queries())
    def test_fused_matches_eval(self, query):
        _assert_agrees(query, columnar=False)

    @settings(max_examples=150, deadline=None)
    @given(query=kola_queries())
    def test_columnar_matches_eval(self, query):
        _assert_agrees(query, columnar=True)

    @settings(max_examples=150, deadline=None)
    @given(query=kola_queries())
    def test_codegen_matches_eval(self, query):
        _assert_codegen_agrees(query, columnar=False)

    @settings(max_examples=150, deadline=None)
    @given(query=kola_queries())
    def test_codegen_columnar_matches_eval(self, query):
        _assert_codegen_agrees(query, columnar=True)


def _corpus_anchors():
    anchors = load_all()
    assert anchors, "tests/corpus/ must hold at least one anchor"
    return anchors


@pytest.mark.parametrize(
    "anchor", _corpus_anchors(), ids=lambda anchor: anchor.name)
class TestCorpusAnchors:
    def test_fused_matches_eval(self, anchor):
        _assert_agrees(anchor.term(), columnar=False)

    def test_columnar_matches_eval(self, anchor):
        _assert_agrees(anchor.term(), columnar=True)

    def test_codegen_matches_eval(self, anchor):
        _assert_codegen_agrees(anchor.term(), columnar=False)

    def test_codegen_columnar_matches_eval(self, anchor):
        _assert_codegen_agrees(anchor.term(), columnar=True)
