"""Integration tests: the five-step hidden-join strategy of Section 4.1,
checked against the paper's printed intermediate forms KG1a/KG1b/KG1c and
the final KG2 of Figure 3."""

import pytest

from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.coko.blocks import run_blocks
from repro.coko.hidden_join import hidden_join_blocks, untangle
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.rewrite.trace import Derivation

KG1A = canon(parse_obj(
    "iterate(Kp(T), <pi1, flat o pi2>)"
    " o iterate(Kp(T), <pi1, iter(Kp(T), grgs o pi2)>)"
    " o iterate(Kp(T), <pi1, iter(in @ <pi1, cars o pi2>, pi2)>)"
    " o iterate(Kp(T), <id, Kf(P)>) ! V"))

KG1B = canon(parse_obj(
    "iterate(Kp(T), <pi1, flat o pi2>)"
    " o iterate(Kp(T), <pi1, iter(Kp(T), grgs o pi2)>)"
    " o iterate(Kp(T), <pi1, iter(in @ <pi1, cars o pi2>, pi2)>)"
    " o nest(pi1, pi2) o <join(Kp(T), id), pi1> ! [V, P]"))

KG1C = canon(parse_obj(
    "nest(pi1, pi2)"
    " o (unnest(pi1, pi2) >< id)"
    " o (iterate(Kp(T), <pi1, grgs o pi2>) >< id)"
    " o (iterate(in @ <pi1, cars o pi2>, id) >< id)"
    " o <join(Kp(T), id), pi1> ! [V, P]"))


@pytest.fixture(scope="module")
def blocks():
    return hidden_join_blocks()


class TestStepByStep:
    def test_step1_break_up_gives_kg1a(self, rulebase, blocks, queries):
        result = blocks[0].transform(queries.kg1, rulebase)
        assert result == KG1A

    def test_step2_bottom_out_gives_kg1b(self, rulebase, blocks):
        result = blocks[1].transform(KG1A, rulebase)
        assert result == KG1B

    def test_step3_pull_up_nest_gives_kg1c(self, rulebase, blocks):
        result = blocks[2].transform(KG1B, rulebase)
        assert result == KG1C

    def test_step4_is_noop_on_kg1c(self, rulebase, blocks):
        """'Query KG1c is unaffected by this step because unnest appears
        just once in the parse tree just following nest.'"""
        assert blocks[3].transform(KG1C, rulebase) == KG1C

    def test_step5_absorb_gives_kg2(self, rulebase, blocks, queries):
        result = blocks[4].transform(KG1C, rulebase)
        assert result == queries.kg2


class TestWholePipeline:
    def test_untangle_kg1_to_kg2(self, rulebase, queries):
        final, derivation = untangle(queries.kg1, rulebase)
        assert final == queries.kg2
        assert len(derivation) > 15  # many small steps, not one big one

    def test_every_step_meaning_preserving(self, rulebase, queries,
                                           db_pair):
        _, derivation = untangle(queries.kg1, rulebase)
        assert derivation.verify(db_pair)

    def test_intermediate_forms_all_equivalent(self, rulebase, queries,
                                               tiny_db):
        expected = eval_obj(queries.kg1, tiny_db)
        for form in (KG1A, KG1B, KG1C, queries.kg2):
            assert eval_obj(form, tiny_db) == expected

    def test_rules_17_through_24_fire(self, rulebase, queries):
        _, derivation = untangle(queries.kg1, rulebase)
        labels = set(derivation.rules_used())
        for number in (17, 19, 20, 21, 24):
            assert f"[{number}]" in labels

    def test_pipeline_from_translation(self, rulebase, queries):
        """Full path: AQUA garage query -> translate -> untangle -> KG2."""
        from repro.translate.aqua_to_kola import translate_query
        kola = translate_query(queries.garage_aqua)
        final, _ = untangle(kola, rulebase)
        assert final == queries.kg2


class TestGradualSimplification:
    """Section 4.2: even when the full transformation does not apply, the
    early blocks simplify the query (unlike a monolithic rule)."""

    def test_inapplicable_query_still_simplified(self, rulebase):
        from repro.translate.aqua_to_kola import translate_query
        from repro.workloads.hidden_join import (HiddenJoinSpec,
                                                 hidden_join_family)
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=2, applicable=False)))
        final, derivation = untangle(query, rulebase)
        # Bottom set is derived from the outer variable: no join appears...
        assert not any(t.op == "join" for t in final.subterms())
        # ...but step 1 still broke the monolithic function apart.
        assert len(derivation) > 0
        assert final != query

    def test_inapplicable_query_meaning_preserved(self, rulebase, tiny_db):
        from repro.aqua.eval import aqua_eval
        from repro.translate.aqua_to_kola import translate_query
        from repro.workloads.hidden_join import (HiddenJoinSpec,
                                                 hidden_join_family)
        aqua = hidden_join_family(HiddenJoinSpec(depth=2, applicable=False))
        query = translate_query(aqua)
        final, _ = untangle(query, rulebase)
        assert eval_obj(final, tiny_db) == aqua_eval(aqua, tiny_db)


class TestDepthFamily:
    """Figure 7: nesting to any degree; the strategy handles all depths."""

    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
    def test_untangles_and_preserves(self, rulebase, tiny_db, depth):
        from repro.aqua.eval import aqua_eval
        from repro.optimizer.physical import recognize_join_nest
        from repro.translate.aqua_to_kola import translate_query
        from repro.workloads.hidden_join import (HiddenJoinSpec,
                                                 hidden_join_family)
        aqua = hidden_join_family(HiddenJoinSpec(depth=depth))
        final, _ = untangle(translate_query(aqua), rulebase)
        assert recognize_join_nest(final) is not None
        assert eval_obj(final, tiny_db) == aqua_eval(aqua, tiny_db)
