"""The rule-pack admission gate over the shipped pool.

The acceptance bar for the pack subsystem:

* every one of the shipped pool's rules loads from ``.kpack`` text and
  clears the full three-stage gate with **zero** rejections;
* the shipped pack files round-trip byte-exactly and regenerate in sync
  with the registry (like ``docs/rules-catalog.md``);
* a rulebase built *from the packs* is indistinguishable from the
  Python-registered one — same rules, same group orderings, and
  bit-identical optimizer behavior on the paper's queries;
* ``RuleBase.load_pack`` keeps the generation-counter cache contract
  and leaves the base untouched on rejection;
* gate reports are byte-deterministic (golden file under
  ``tests/golden/``).
"""

import json
import pathlib

import pytest

from repro.rewrite.rulebase import RuleBase
from repro.rulepacks import (AdmissionGate, GateConfig, PackRejected,
                             build_rulebase, load_pack_file,
                             load_standard_packs, standard_pack_paths)
from repro.rulepacks.export import derive_packs
from repro.rulepacks.format import render_pack

#: Trimmed gate knobs for the in-suite full-pool run (the CI ``rule-gate``
#: job uses the heavier defaults); still executes every stage including
#: the differential-oracle probes for every unguarded rule.
LIGHT = GateConfig(trials=15, oracle_probes=2, oracle_queries=1)

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def standard_packs():
    return load_standard_packs()


@pytest.fixture(scope="module")
def light_report(standard_packs):
    """One full-pool gate run shared by the admission tests (~30s)."""
    return AdmissionGate(LIGHT).check(standard_packs)


class TestShippedPacksAdmitted:
    def test_pool_is_fully_represented(self, standard_packs, rulebase):
        names = [decl.name for pack in standard_packs
                 for decl in pack.rules]
        assert sorted(names) == sorted(r.name for r in rulebase.all_rules())
        assert len(names) == len(set(names))

    def test_zero_rejections(self, light_report, rulebase):
        assert light_report.ok, light_report.render()
        assert len(light_report.results) == len(rulebase)
        assert light_report.rejected == []

    def test_every_stage_recorded(self, light_report):
        for result in light_report.results:
            stages = {s.stage: s.status for s in result.stages}
            assert stages["parse"] == "pass"
            assert stages["model-check"] == "pass"
            # Guarded rules legitimately skip the oracle stage.
            assert stages["oracle"] in ("pass", "skip")

    def test_guarded_rules_skip_oracle_only(self, light_report, rulebase):
        guarded = {r.name for r in rulebase.all_rules()
                   if r.preconditions}
        for result in light_report.results:
            oracle = next(s for s in result.stages if s.stage == "oracle")
            expected = "skip" if result.rule in guarded else "pass"
            assert oracle.status == expected, result.rule

    def test_report_json_schema(self, light_report):
        payload = json.loads(light_report.to_json_text())
        assert payload["ok"] is True
        assert payload["rejected"] == 0
        assert payload["checked"] == len(light_report.results)
        assert payload["config"]["trials"] == LIGHT.trials
        assert {p["name"] for p in payload["packs"]} >= {"fig4", "fig5"}
        for entry in payload["results"]:
            assert entry["admitted"] is True
            assert entry["rejected_stage"] is None


class TestShippedPacksInSync:
    def test_files_round_trip_byte_exactly(self):
        for path in standard_pack_paths():
            text = path.read_text(encoding="utf-8")
            assert render_pack(load_pack_file(path)) == text, path.name

    def test_packs_regenerate_in_sync(self, rulebase):
        """The committed .kpack files must be regenerated
        (``python -m repro.rulepacks.export``) when the registry
        changes."""
        derived = {pack.name: pack for pack in derive_packs(rulebase)}
        shipped = {pack.name: pack for pack in load_standard_packs()}
        assert set(derived) == set(shipped)
        for name, pack in derived.items():
            assert render_pack(pack) == render_pack(shipped[name]), name


class TestPackRegistryEquivalence:
    @pytest.fixture(scope="class")
    def pack_base(self):
        return build_rulebase()

    @pytest.fixture(scope="class")
    def registry(self):
        # A private fresh registry: the session-scoped ``rulebase``
        # fixture is shared suite-wide and other tests may touch it.
        from repro.rules.registry import standard_rulebase
        return standard_rulebase()

    def test_same_rules(self, pack_base, registry):
        assert len(pack_base) == len(registry)
        for one_rule in registry.all_rules():
            assert pack_base.get(one_rule.name) == one_rule

    def test_same_groups_same_order(self, pack_base, registry):
        assert pack_base.group_names() == registry.group_names()
        for name in registry.group_names():
            assert ([r.name for r in pack_base.group(name)]
                    == [r.name for r in registry.group(name)]), name

    def test_optimizer_behavior_identical(self, pack_base, registry,
                                          tiny_db, queries):
        """Plans chosen from the pack-loaded base are bit-identical
        (interned-term identity) to the registry's."""
        from repro.optimizer.optimizer import Optimizer
        corpus = [queries.kg1, queries.t1k_source, queries.t2k_source,
                  queries.k3]
        for search in ("greedy", "saturate"):
            for query in corpus:
                from_packs = Optimizer(rulebase=pack_base).optimize(
                    query, tiny_db, search=search)
                from_registry = Optimizer(rulebase=registry).optimize(
                    query, tiny_db, search=search)
                assert from_packs.best_term is from_registry.best_term

    def test_engine_normalization_identical(self, pack_base, registry,
                                            engine, queries):
        for query in (queries.kg1, queries.t1k_source, queries.k4):
            ours = engine.normalize(query, pack_base.group("simplify"))
            theirs = engine.normalize(query, registry.group("simplify"))
            assert ours is theirs


SOUND_PACK = """\
pack add-on
version 1

rule demo-id-left
    safety exhaustive
    groups simplify
    lhs id o $f
    rhs $f
"""

UNSOUND_PACK = """\
pack broken
version 1

rule inv-gt-is-leq
    sort pred
    safety exhaustive
    groups simplify
    lhs inv(gt)
    rhs leq
"""

FAST = GateConfig(trials=20, oracle_probes=2, oracle_queries=1)


class TestLoadPack:
    def test_load_bumps_generations(self):
        base = RuleBase()
        before_total = base.generation
        base.load_pack(SOUND_PACK, verify=False)
        assert base.generation > before_total
        assert "demo-id-left" in base
        assert [r.name for r in base.group("simplify")] == ["demo-id-left"]

    def test_load_invalidates_group_caches(self, rulebase):
        base = build_rulebase()
        index_before = base.group_index("simplify")
        base.load_pack(SOUND_PACK, verify=False)
        assert base.group_index("simplify") is not index_before

    def test_verified_load_admits_sound_pack(self):
        base = RuleBase()
        report = base.load_pack(SOUND_PACK,
                                gate=AdmissionGate(FAST))
        assert report is not None and report.ok
        assert "demo-id-left" in base

    def test_rejected_pack_leaves_base_untouched(self):
        base = RuleBase()
        base.load_pack(SOUND_PACK, verify=False)
        generation = base.generation
        with pytest.raises(PackRejected) as excinfo:
            base.load_pack(UNSOUND_PACK, gate=AdmissionGate(FAST))
        assert "inv-gt-is-leq" in str(excinfo.value)
        assert excinfo.value.report.rejected[0].rejected_stage \
            == "model-check"
        assert "inv-gt-is-leq" not in base
        assert base.generation == generation

    def test_malformed_pack_leaves_base_untouched(self):
        base = RuleBase()
        base.load_pack(SOUND_PACK, verify=False)
        generation = base.generation
        from repro.rulepacks import PackFormatError
        with pytest.raises(PackFormatError):
            base.load_pack("pack nope\n", verify=False)
        assert base.generation == generation and len(base) == 1


#: The golden run's config — chosen small but with every stage live.
GOLDEN_CONFIG = GateConfig(trials=25, oracle_probes=2, oracle_queries=1)


class TestDeterminism:
    def test_checker_reports_are_reproducible(self, rulebase):
        """Same (rule, config) -> identical report objects.  The
        per-rule seed folds the rule name in via crc32, not the
        process-salted ``hash()`` (see RuleChecker.check)."""
        from repro.larch.checker import RuleChecker
        one_rule = rulebase.get("count-map-inj")
        first = RuleChecker(trials=40).check(one_rule)
        second = RuleChecker(trials=40).check(one_rule)
        assert first == second

    def test_golden_gate_report(self):
        """Gating fig5 under GOLDEN_CONFIG is byte-identical across
        runs, processes and Python versions.  Regenerate (only after an
        intentional gate change) with:

        ``PYTHONPATH=src python -m tests.regen_golden_gate_report``
        (see the module for the exact recipe used here).
        """
        fig5 = next(p for p in load_standard_packs() if p.name == "fig5")
        report = AdmissionGate(GOLDEN_CONFIG).check(fig5)
        golden = GOLDEN / "gate_report_fig5.json"
        assert report.to_json_text() == golden.read_text(encoding="utf-8")
