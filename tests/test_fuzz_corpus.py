"""Regression corpus replay: every stored reproducer in
``tests/corpus/`` goes back through the *full* differential-oracle
matrix on every tier-1 run.  A shape that diverged (or nearly did)
once can never regress silently."""

from __future__ import annotations

import pytest

from repro.core.pretty import pretty
from repro.fuzz.corpus import (CORPUS_DIR, Reproducer, from_divergence,
                               load, load_all, save)
from repro.fuzz.oracle import (DifferentialOracle, Divergence,
                               default_matrix, is_well_typed)
from repro.schema.paper_schema import paper_schema

ENTRIES = load_all()


@pytest.fixture(scope="module")
def oracle():
    with DifferentialOracle(configs=default_matrix(),
                            shrink=False) as shared:
        yield shared


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"
    assert len({e.name for e in ENTRIES}) == len(ENTRIES)


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_parses_and_is_well_typed(entry):
    term = entry.term()
    assert pretty(term) == entry.query, "corpus text is not canonical"
    assert is_well_typed(term, paper_schema()), entry.query


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_has_no_divergence(entry, oracle):
    divergences = oracle.check(entry.term(), seed=entry.seed)
    assert not divergences, "\n".join(d.report() for d in divergences)


def test_save_load_roundtrip(tmp_path):
    entry = Reproducer(name="tmp-roundtrip", query="id ! P", seed=9,
                       config="compiled-greedy", note="n", found="2026-08-06")
    path = save(entry, tmp_path)
    assert load(path) == entry
    assert load_all(tmp_path) == [entry]
    assert load_all(tmp_path / "missing") == []


def test_from_divergence_uses_minimal_term(tmp_path):
    from repro.core.parser import parse_query
    div = Divergence(config="compiled-greedy",
                     query=parse_query("id o count ! P"),
                     expected=8, actual=1, seed=77,
                     shrunk=parse_query("count ! P"))
    entry = from_divergence(div, "tmp-div", note="why", found="2026-08-06")
    assert entry.query == "count ! P"
    assert entry.seed == 77
    assert entry.config == "compiled-greedy"
    saved = save(entry, tmp_path)
    assert load(saved) == entry
