"""Hypothesis property tests for the bulk-type extensions (bags, lists)
and the aggregate operators."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constructors as C
from repro.core.bags import KBag
from repro.core.eval import apply_fn
from repro.core.lists import KList
from repro.core.values import KPair, kset

_SETTINGS = settings(max_examples=60, deadline=None)

ints = st.integers(-5, 8)
int_lists = st.lists(ints, max_size=10)
int_bags = int_lists.map(KBag.of)
int_sets = st.sets(ints, max_size=8).map(kset)


# -- bag algebra ------------------------------------------------------------

@given(a=int_bags, b=int_bags)
@_SETTINGS
def test_bag_union_commutative(a, b):
    assert a.additive_union(b) == b.additive_union(a)


@given(a=int_bags, b=int_bags, c=int_bags)
@_SETTINGS
def test_bag_union_associative(a, b, c):
    assert (a.additive_union(b).additive_union(c)
            == a.additive_union(b.additive_union(c)))


@given(a=int_bags)
@_SETTINGS
def test_bag_union_identity(a):
    assert a.additive_union(KBag.empty()) == a


@given(a=int_bags, b=int_bags)
@_SETTINGS
def test_distinct_is_union_homomorphism(a, b):
    assert (a.additive_union(b).support()
            == a.support() | b.support())


@given(items=int_lists)
@_SETTINGS
def test_bag_count_is_length(items):
    assert len(KBag.of(items)) == len(items)


@given(items=int_lists)
@_SETTINGS
def test_bag_sum_matches_python_sum(items):
    assert apply_fn(C.bag_sum(), KBag.of(items)) == sum(items)


@given(a=int_sets)
@_SETTINGS
def test_tobag_distinct_roundtrip(a):
    bag = apply_fn(C.tobag(), a)
    assert apply_fn(C.distinct(), bag) == a
    assert all(bag.count(x) == 1 for x in a)


@given(a=int_bags)
@_SETTINGS
def test_bag_filter_partition(a):
    even = a.filter(lambda x: x % 2 == 0)
    odd = a.filter(lambda x: x % 2 != 0)
    assert even.additive_union(odd) == a


# -- list algebra ---------------------------------------------------------------

@given(a=int_lists, b=int_lists, c=int_lists)
@_SETTINGS
def test_list_concat_associative(a, b, c):
    la, lb, lc = KList(a), KList(b), KList(c)
    assert la.concat(lb).concat(lc) == la.concat(lb.concat(lc))


@given(a=int_lists)
@_SETTINGS
def test_list_concat_identity(a):
    sequence = KList(a)
    assert sequence.concat(KList()) == sequence
    assert KList().concat(sequence) == sequence


@given(a=int_sets)
@_SETTINGS
def test_listify_is_sorted_permutation(a):
    ordered = apply_fn(C.listify(C.id_()), a)
    values = list(ordered)
    assert values == sorted(values)
    assert kset(values) == a
    assert len(values) == len(a)  # sets have no duplicates to add


@given(a=int_sets, bound=ints)
@_SETTINGS
def test_filter_commutes_with_listify(a, bound):
    """The filter-listify rule as a property over concrete data."""
    pred = C.curry_p(C.lt(), C.lit(bound))        # bound < x
    sort_then_filter = apply_fn(
        C.compose(C.list_iterate(pred, C.id_()), C.listify(C.id_())), a)
    filter_then_sort = apply_fn(
        C.compose(C.listify(C.id_()), C.iterate(pred, C.id_())), a)
    assert sort_then_filter == filter_then_sort


@given(a=int_lists)
@_SETTINGS
def test_to_set_forgets_order_and_counts(a):
    assert apply_fn(C.to_set(), KList(a)) == kset(a)


# -- aggregates -------------------------------------------------------------------

@given(a=int_sets, b=int_sets)
@_SETTINGS
def test_count_union_inclusion_exclusion(a, b):
    union_count = apply_fn(C.count(), a | b)
    intersect_count = apply_fn(C.count(), a & b)
    assert union_count + intersect_count == len(a) + len(b)


@given(items=int_lists)
@_SETTINGS
def test_sum_set_vs_bag(items):
    """SUM over a set never exceeds SUM over the bag for non-negative
    data — the quantitative face of the SUM/DISTINCT distinction."""
    non_negative = [abs(x) for x in items]
    set_sum = apply_fn(C.ssum(), kset(non_negative))
    bag_sum = apply_fn(C.bag_sum(), KBag.of(non_negative))
    assert set_sum <= bag_sum


@given(a=int_sets, b=int_sets)
@_SETTINGS
def test_count_bug_invariant(a, b):
    """The correct COUNT unnesting always yields |A| rows — the buggy
    one yields the number of A-elements with partners."""
    from repro.core.parser import parse_pred
    pred = parse_pred("lt")
    joined = apply_fn(C.join(pred, C.id_()), KPair(a, b))
    grouped = apply_fn(C.nest(C.pi1(), C.pi2()), KPair(joined, a))
    assert len(grouped) == len(a)
    with_partners = {pair.fst for pair in joined}
    buggy_keys = apply_fn(C.iterate(C.const_p(C.true()), C.pi1()), joined)
    assert buggy_keys == kset(with_partners)
