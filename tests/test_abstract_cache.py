"""Constant abstraction and the two-level plan cache.

Covers the abstraction primitives (skeleton/bindings round trip, slot
numbering, the scalar-only policy), the parameterized plan-cache level
(family hits, invalidation by rulebase generation and db fingerprint,
the blocked-constant fallback to exact keying, the escape hatch),
incremental e-matching parity, warm e-graph reuse, and the batch
layer's skeleton-affinity routing.
"""

import pytest

from repro.core.errors import TermError
from repro.core.parser import parse_fun, parse_obj
from repro.core.terms import (PARAM_TAG, Sort, Term, abstract_constants,
                              abstract_with, from_portable,
                              instantiate_constants, is_param_slot)
from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import BatchOptimizer, optimize_many, route_of
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.rewrite.rule import rule
from repro.rules.preconditions import AnnotationOracle
from repro.rules.registry import standard_rulebase
from repro.saturate.driver import SaturationBudget, Saturator
from repro.schema.generator import (GeneratorConfig, generate_database,
                                    tiny_database)
from repro.workloads.corpus import _TEMPLATES


def _q(text):
    return canon(parse_obj(text))


def _family(template="iterate(gt @ <age, Kf({c})>, id) ! P", n=3,
            start=5):
    return [_q(template.format(c=start + i)) for i in range(n)]


# -- abstraction primitives ---------------------------------------------------


class TestAbstractConstants:
    def test_round_trip_is_identity(self):
        for _, template in _TEMPLATES:
            term = _q(template.format(c=37))
            skeleton, values = abstract_constants(term)
            assert instantiate_constants(skeleton, values) is term

    def test_family_shares_skeleton(self):
        a, b, c = _family(n=3)
        sa, va = abstract_constants(a)
        sb, vb = abstract_constants(b)
        sc, _ = abstract_constants(c)
        assert sa is sb is sc
        assert va != vb

    def test_slot_numbering_left_to_right(self):
        term = _q("iterate(gt @ <age, Kf(5)>, Kf(7)) ! P")
        _, values = abstract_constants(term)
        assert values == (5, 7)

    def test_equal_constants_share_a_slot(self):
        """f(5,5) and f(5,7) must abstract to *different* skeletons —
        literal-equality patterns are structure, not parameters."""
        same = _q("iterate(gt @ <Kf(5), Kf(5)>, id) ! P")
        diff = _q("iterate(gt @ <Kf(5), Kf(7)>, id) ! P")
        s_same, v_same = abstract_constants(same)
        s_diff, v_diff = abstract_constants(diff)
        assert s_same is not s_diff
        assert v_same == (5,) and v_diff == (5, 7)

    def test_booleans_are_not_abstracted(self):
        """``true()``/``false()`` are ``lit(True)``/``lit(False)``:
        abstracting them would parameterize rule applicability."""
        term = _q("iterate(Kp(T), id) ! P")
        skeleton, values = abstract_constants(term)
        assert skeleton is term and values == ()

    def test_typed_slots_distinguish_int_float(self):
        int_q = _q("iterate(gt @ <age, Kf(5)>, id) ! P")
        float_q = _q("iterate(gt @ <age, Kf(5.0)>, id) ! P")
        s_int, _ = abstract_constants(int_q)
        s_float, _ = abstract_constants(float_q)
        assert s_int is not s_float

    def test_memoized_on_interned_term(self):
        term = _q(_TEMPLATES[0][1].format(c=11))
        first = abstract_constants(term)
        second = abstract_constants(term)
        assert first[0] is second[0] and first[1] == second[1]

    def test_slot_term_is_opaque(self):
        """A term already carrying slot labels refuses re-abstraction
        (returns itself with no bindings) — double abstraction would
        make re-instantiation ambiguous."""
        skeleton, values = abstract_constants(
            _q("iterate(gt @ <age, Kf(5)>, id) ! P"))
        assert values
        again, nothing = abstract_constants(skeleton)
        assert again is skeleton and nothing == ()

    def test_skeleton_is_portable(self):
        skeleton, _ = abstract_constants(
            _q("iterate(gt @ <age, Kf(5)>, id) ! P"))
        assert from_portable(skeleton.to_portable()) is skeleton
        slots = [node for node in skeleton.subterms()
                 if is_param_slot(node)]
        assert slots and all(node.label[0] == PARAM_TAG
                             for node in slots)

    def test_instantiate_rejects_bad_bindings(self):
        skeleton, values = abstract_constants(
            _q("iterate(gt @ <age, Kf(5)>, Kf(7)) ! P"))
        assert len(values) == 2
        with pytest.raises(TermError):
            instantiate_constants(skeleton, (5,))     # index out of range
        with pytest.raises(TermError):
            instantiate_constants(skeleton, ("x", "y"))  # type mismatch

    def test_abstract_with_maps_only_listed_values(self):
        term = _q("iterate(gt @ <age, Kf(5)>, Kf(7)) ! P")
        rebuilt = abstract_with(term, (5,))
        slots = [n for n in rebuilt.subterms() if is_param_slot(n)]
        kept = [n for n in rebuilt.subterms()
                if n.op == "lit" and n.label == 7]
        assert len(slots) == 1 and kept
        assert instantiate_constants(rebuilt, (5,)) is term


# -- the parameterized plan-cache level ---------------------------------------


def _mismatch(a, b):
    out = []
    if a.best_term is not b.best_term:
        out.append("best_term")
    if type(a.plan) is not type(b.plan):
        out.append("plan_class")
    if a.estimated_cost != b.estimated_cost:
        out.append("cost")
    if a.derivation.rules_used() != b.derivation.rules_used():
        out.append("derivation")
    return out


class TestParamCache:
    @pytest.mark.parametrize("mode", ["greedy", "saturate"])
    def test_family_hits_with_exact_parity(self, db, mode):
        warm = Optimizer(search=mode)
        for term in _family(n=4):
            served = warm.optimize(term, db)
            cold = Optimizer(search=mode,
                             abstract_cache=False).optimize(term, db)
            assert _mismatch(served, cold) == []
        param = warm.plan_cache_info()["param"]
        assert param["misses"] == 1 and param["hits"] == 3

    def test_served_result_promoted_to_exact_cache(self, db):
        opt = Optimizer()
        a, b = _family(n=2)
        opt.optimize(a, db)
        first = opt.optimize(b, db)   # param hit, promoted
        second = opt.optimize(b, db)  # exact hit
        assert second is first
        info = opt.plan_cache_info()
        assert info["hits"] == 1
        assert info["param"]["hits"] == 1

    def test_generation_bump_misses_both_levels(self, db):
        base = standard_rulebase()
        opt = Optimizer(base)
        a, b = _family(n=2)
        opt.optimize(a, db)
        opt.optimize(b, db)
        assert opt.plan_cache_info()["param"]["hits"] == 1
        base.extend_group("scratch-abstract", ["r18"])  # bumps generation
        opt.optimize(a, db)
        info = opt.plan_cache_info()
        assert info["hits"] == 0                   # exact miss
        assert info["param"]["hits"] == 1          # no new param hit
        assert info["param"]["misses"] == 2

    def test_fingerprint_change_misses_both_levels(self):
        opt = Optimizer()
        a, b = _family(n=2)
        small = tiny_database(seed=17)
        opt.optimize(a, small)
        opt.optimize(b, small)
        assert opt.plan_cache_info()["param"]["hits"] == 1
        bigger = generate_database(GeneratorConfig(
            n_persons=20, n_vehicles=5, n_addresses=4, seed=17))
        opt.optimize(a, bigger)
        info = opt.plan_cache_info()
        assert info["hits"] == 0
        assert info["param"]["hits"] == 1
        assert info["param"]["misses"] == 2

    def test_blocked_constant_falls_back_to_exact(self, db):
        """A rule pinning a scalar literal makes queries *binding that
        value* non-abstractable: they are keyed exactly (both the store
        and the serve path refuse the parameterized level), while other
        values still share skeleton entries."""
        base = standard_rulebase()
        base.add(rule("pin-25", "gt @ <age, Kf(25)>", "Kp(T)",
                      sort=Sort.PRED, bidirectional=False),
                 groups=["scratch-pin"])
        opt = Optimizer(base)
        free_a, free_b = _family(n=2, start=40)
        pinned = _family(n=1, start=25)[0]
        opt.optimize(free_a, db)
        opt.optimize(free_b, db)
        opt.optimize(pinned, db)
        info = opt.plan_cache_info()["param"]
        assert info["hits"] == 1          # free_b only
        assert info["blocked"] == 1       # the pinned query
        # The pinned query must not have created a skeleton entry: a
        # second blocked query is blocked again, never param-served.
        opt.optimize(pinned, db)          # exact hit
        opt.clear_plan_cache()
        opt.optimize(pinned, db)
        assert opt.plan_cache_info()["param"]["blocked"] == 2

    def test_oracle_fact_constants_block(self, db):
        engine = Engine(oracle=AnnotationOracle())
        opt = Optimizer(engine=engine)
        fact = canon(parse_fun("Kf(33)"))
        engine.oracle.declare("constant", fact)
        member = _family(n=1, start=33)[0]
        opt.optimize(member, db)
        assert opt.plan_cache_info()["param"]["blocked"] == 1

    def test_escape_hatch_disables_param_level(self, db):
        opt = Optimizer(abstract_cache=False)
        for term in _family(n=3):
            opt.optimize(term, db)
        info = opt.plan_cache_info()
        assert info["param"]["hits"] == 0
        assert info["param"]["misses"] == 0
        assert info["misses"] == 3

    def test_constant_free_queries_skip_param_level(self, db, queries):
        opt = Optimizer()
        opt.optimize(queries.kg1, db)
        info = opt.plan_cache_info()["param"]
        assert info["hits"] == 0 and info["misses"] == 0


# -- incremental e-matching and warm e-graph reuse ----------------------------


class TestIncrementalMatching:
    @pytest.fixture(scope="class")
    def pool(self, rulebase):
        return rulebase.group_compiled("saturate")

    @pytest.mark.parametrize("seed_query", ["kg1", "t1k_source",
                                            "t2k_source"])
    def test_bit_identical_to_full_matching(self, rulebase, pool,
                                            queries, seed_query):
        """Scoped matching must change nothing observable: same
        iteration count, e-nodes, classes, rewrites, merges, bans and
        saturation verdict as the match-everything passes."""
        seed = getattr(queries, seed_query)
        runs = {}
        for inc in (False, True):
            saturator = Saturator(
                Engine(), pool,
                SaturationBudget(incremental_match=inc))
            runs[inc] = saturator.run([seed])
        full, scoped = runs[False].report, runs[True].report
        for field in ("iterations", "enodes", "classes",
                      "rewrites_applied", "merges", "saturated",
                      "budget_hit", "rule_bans", "banned_skips",
                      "match_truncations"):
            assert getattr(scoped, field) == getattr(full, field), field
        full_best = runs[False].egraph.best_terms()[
            runs[False].root_class]
        scoped_best = runs[True].egraph.best_terms()[
            runs[True].root_class]
        assert full_best is scoped_best

    def test_ban_lift_on_idle_round_still_works(self, pool, queries):
        """The backoff scheduler's idle-round ban lift must survive
        incremental matching: a run that reports saturated did so on a
        fully active round, and bans must still be recorded before."""
        saturator = Saturator(Engine(), pool,
                              SaturationBudget(max_iterations=12,
                                               backoff_threshold=1))
        run = saturator.run([queries.t1k_source])
        assert run.report.rule_bans > 0
        assert run.report.saturated

    def test_backoff_outcome_matches_no_backoff(self, pool, queries):
        budget_a = SaturationBudget(max_iterations=12)
        budget_b = SaturationBudget(max_iterations=12,
                                    backoff_threshold=0)
        run_a = Saturator(Engine(), pool, budget_a).run(
            [queries.t1k_source])
        run_b = Saturator(Engine(), pool, budget_b).run(
            [queries.t1k_source])
        assert run_a.report.saturated == run_b.report.saturated
        best_a = run_a.egraph.best_terms()[run_a.root_class]
        best_b = run_b.egraph.best_terms()[run_b.root_class]
        assert best_a is best_b


class TestWarmEGraphReuse:
    @pytest.fixture(scope="class")
    def pool(self, rulebase):
        return rulebase.group_compiled("saturate")

    def test_warm_run_reports_and_budgets_delta(self, pool):
        a, b = _family(n=2)
        saturator = Saturator(Engine(), pool, SaturationBudget())
        cold = saturator.run([a])
        assert not cold.report.warm_start
        assert cold.report.enodes_added == cold.report.enodes
        warm = saturator.run([b], egraph=cold.egraph)
        assert warm.report.warm_start
        assert warm.report.enodes_added < warm.report.enodes
        assert warm.egraph is cold.egraph

    def test_warm_run_finds_same_best_form(self, pool):
        a, b = _family(n=2)
        saturator = Saturator(Engine(), pool, SaturationBudget())
        cold_b = saturator.run([b])
        warm_b = saturator.run([b], egraph=saturator.run([a]).egraph)
        cold_best = cold_b.egraph.best_terms()[cold_b.root_class]
        warm_best = warm_b.egraph.best_terms()[warm_b.root_class]
        assert cold_best is warm_best

    def test_optimizer_pools_and_reuses_by_family(self):
        """A param-cache miss with a pooled family (here: a changed db
        fingerprint) re-saturates warm instead of cold."""
        opt = Optimizer(search="saturate")
        a, b = _family(n=2)
        small = tiny_database(seed=17)
        opt.optimize(a, small)
        param = opt.plan_cache_info()["param"]
        assert param["warm_pool_size"] == 1
        bigger = generate_database(GeneratorConfig(
            n_persons=20, n_vehicles=5, n_addresses=4, seed=17))
        result = opt.optimize(b, bigger)
        param = opt.plan_cache_info()["param"]
        assert param["warm_hits"] == 1
        cold = Optimizer(search="saturate",
                         abstract_cache=False).optimize(b, bigger)
        assert _mismatch(result, cold) == []


# -- batch layer --------------------------------------------------------------


class TestBatchSkeletonRouting:
    def test_family_members_share_a_worker(self):
        routes = {route_of(abstract_constants(term)[0].to_portable(), 4)
                  for term in _family(n=6)}
        assert len(routes) == 1

    def test_exact_payload_routing_spreads_family(self):
        routes = {route_of(term.to_portable(), 4)
                  for term in _family(n=6)}
        assert len(routes) > 1

    def test_fallback_gets_aggregate_capacity(self):
        batch = BatchOptimizer(workers=4)
        assert (batch._fallback.plan_cache_max
                == Optimizer.PLAN_CACHE_MAX * 4)
        pinned = BatchOptimizer(workers=4, plan_cache_max=7)
        assert pinned._fallback.plan_cache_max == 7

    def test_fallback_honors_escape_hatch(self):
        batch = BatchOptimizer(workers=2, abstract_cache=False)
        assert batch._fallback.abstract_cache is False

    def test_in_process_batch_parity(self, db):
        family = _family(n=4)
        with_cache = optimize_many(family, db, workers=1)
        without = optimize_many(family, db, workers=1,
                                abstract_cache=False)
        for one, other in zip(with_cache.results, without.results):
            assert _mismatch(one.result, other.result) == []
        assert with_cache.plan_cache["size"] == without.plan_cache["size"]
