"""Coverage for small public API surfaces not exercised elsewhere."""

import pytest

from repro.aqua.analysis import occurs_free_in_lambda_body
from repro.aqua.terms import Attr, BinCmp, Const, Lam, Var
from repro.core.errors import KolaError, MatchFailure, PlanError
from repro.core.parser import parse_obj, parse_query
from repro.rules.extended import families, pool_rules
from repro.translate.aqua_to_kola import translate_pred
from repro.translate.environment import Environment


class TestSmallSurfaces:
    def test_parse_query_alias(self):
        assert parse_query("id ! 3") == parse_obj("id ! 3")

    def test_occurs_free_in_lambda_body(self):
        lam = Lam("c", BinCmp(">", Attr(Var("p"), "age"), Const(25)))
        assert occurs_free_in_lambda_body(lam, "p")
        assert not occurs_free_in_lambda_body(lam, "c")  # bound
        assert not occurs_free_in_lambda_body(lam, "q")

    def test_pool_rules_filters_structural(self):
        everything = pool_rules(include_structural=True)
        terminating = pool_rules(include_structural=False)
        assert len(terminating) < len(everything)
        names = {r.name for r in everything} - {r.name
                                                for r in terminating}
        assert "conj-comm" in names

    def test_families_partition_pool(self):
        by_family = families()
        total = sum(len(rules) for rules in by_family.values())
        assert total == len(pool_rules())
        assert "join" in by_family and "pair" in by_family

    def test_translate_pred_standalone(self, tiny_db):
        from repro.core.eval import test_pred as check_pred
        pred = translate_pred(
            BinCmp(">", Attr(Var("p"), "age"), Const(25)),
            Environment(("p",)))
        person = next(iter(tiny_db.collection("P")))
        assert check_pred(pred, person, tiny_db) == (
            person.get("age") > 25)

    def test_error_hierarchy(self):
        assert issubclass(MatchFailure, KolaError)
        assert issubclass(PlanError, KolaError)

    def test_environment_depth(self):
        assert Environment(("a", "b")).depth() == 2

    def test_aqua_engine_stats_reset(self):
        from repro.aqua.rules import AquaEngineStats
        stats = AquaEngineStats(nodes_visited=5, head_invocations=3,
                                rewrites=1)
        stats.reset()
        assert (stats.nodes_visited, stats.head_invocations,
                stats.rewrites) == (0, 0, 0)

    def test_module_stats_merge(self, rulebase, queries):
        from repro.coko.compiler import compile_blocks
        from repro.coko.hidden_join import hidden_join_blocks
        module = compile_blocks("m", hidden_join_blocks(), rulebase)
        module.apply(queries.kg1)
        assert module.stats.match_attempts > 0

    def test_signature_dataclass_fields(self):
        from repro.core.signature import REGISTRY, Signature
        sig = REGISTRY["iterate"]
        assert isinstance(sig, Signature)
        assert sig.display == "iterate"

    def test_propagation_enum(self):
        from repro.rules.preconditions import INFERENCE_TABLES, Propagation
        assert INFERENCE_TABLES["injective"]["compose"] is Propagation.ALL
