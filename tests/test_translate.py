"""Tests for the OQL parser and the AQUA -> KOLA translator."""

import pytest

from repro.aqua.eval import aqua_eval
from repro.aqua.terms import (App, Attr, BinCmp, Const, Flatten, In, Join,
                              Lam, PairE, Sel, SetRef, Var)
from repro.core.errors import ParseError, TranslationError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.pretty import pretty
from repro.core.types import infer
from repro.rewrite.pattern import canon
from repro.schema.paper_schema import paper_schema
from repro.translate.aqua_to_kola import translate_query
from repro.translate.environment import Environment
from repro.translate.metrics import max_env_depth, measure_translation
from repro.translate.oql import parse_oql


class TestEnvironment:
    def test_single_variable_is_id(self):
        env = Environment(("x",))
        assert pretty(env.access("x")) == "id"

    def test_two_variables(self):
        env = Environment(("x", "y"))
        assert pretty(env.access("y")) == "pi2"
        assert pretty(env.access("x")) == "pi1"

    def test_three_variables(self):
        env = Environment(("x", "y", "z"))
        assert pretty(env.access("z")) == "pi2"
        assert pretty(env.access("y")) == "pi2 o pi1"
        assert pretty(env.access("x")) == "pi1 o pi1"

    def test_shadowing_resolves_innermost(self):
        env = Environment(("x", "x"))
        assert pretty(env.access("x")) == "pi2"

    def test_unbound(self):
        with pytest.raises(TranslationError, match="unbound"):
            Environment(("x",)).access("y")

    def test_extend(self):
        env = Environment().extend("a").extend("b")
        assert len(env) == 2
        assert "a" in env


class TestTranslationFidelity:
    def test_garage_query_is_exactly_kg1(self, queries):
        assert translate_query(queries.garage_aqua) == queries.kg1

    def test_t1_source(self, queries):
        assert translate_query(queries.t1_source_aqua) == queries.t1k_source

    def test_a3_a4_translate_to_k3_k4(self, queries):
        assert translate_query(queries.a3_aqua) == queries.k3
        assert translate_query(queries.a4_aqua) == queries.k4

    def test_k3_k4_differ_only_in_projection(self, queries):
        """Section 3.2: 'the KOLA queries are structurally similar to one
        another, but not identical' — they differ in one pi1/pi2 leaf."""
        k3_nodes = list(queries.k3.subterms())
        k4_nodes = list(queries.k4.subterms())
        assert len(k3_nodes) == len(k4_nodes)
        diffs = [(a.op, b.op) for a, b in zip(k3_nodes, k4_nodes)
                 if a.op != b.op]
        assert diffs == [("pi2", "pi1")]


class TestTranslationSemantics:
    CASES = [
        App(Lam("p", Attr(Var("p"), "age")), SetRef("P")),
        Sel(Lam("p", BinCmp("<=", Attr(Var("p"), "age"), Const(40))),
            SetRef("P")),
        App(Lam("p", PairE(Var("p"), Const(1))), SetRef("P")),
        Flatten(App(Lam("p", Attr(Var("p"), "child")), SetRef("P"))),
        Sel(Lam("p", BinCmp("!=", Attr(Var("p"), "age"), Const(30))),
            Sel(Lam("p", BinCmp(">", Attr(Var("p"), "age"), Const(5))),
                SetRef("P"))),
        App(Lam("v", Sel(Lam("p", In(Var("v"), Attr(Var("p"), "cars"))),
                         SetRef("P"))), SetRef("V")),
    ]

    @pytest.mark.parametrize("expr", CASES)
    def test_meaning_preserved(self, expr, tiny_db):
        kola = translate_query(expr)
        assert eval_obj(kola, tiny_db) == aqua_eval(expr, tiny_db)

    def test_join_desugaring(self, tiny_db):
        query = Join(Lam("x", Lam("y", BinCmp("==", Attr(Var("x"), "age"),
                                              Attr(Var("y"), "age")))),
                     Lam("x", Lam("y", PairE(Var("x"), Var("y")))),
                     SetRef("P"), SetRef("P"))
        kola = translate_query(query)
        assert eval_obj(kola, tiny_db) == aqua_eval(query, tiny_db)

    def test_conditional_translation(self, tiny_db):
        from repro.aqua.terms import IfE
        query = App(Lam("p", IfE(BinCmp(">", Attr(Var("p"), "age"),
                                        Const(25)),
                                 Const(1), Const(0))), SetRef("P"))
        kola = translate_query(query)
        assert eval_obj(kola, tiny_db) == aqua_eval(query, tiny_db)

    def test_translations_are_well_typed(self, queries):
        schema = paper_schema()
        for expr in self.CASES:
            infer(translate_query(expr), schema)  # must not raise

    def test_bare_lambda_rejected(self):
        with pytest.raises(TranslationError):
            translate_query(Lam("x", Var("x")))

    def test_boolean_in_value_position_rejected(self):
        with pytest.raises(TranslationError):
            translate_query(App(Lam("p", BinCmp(">", Attr(Var("p"), "age"),
                                                Const(1))), SetRef("P")))


class TestOql:
    def test_simple_select(self, tiny_db):
        query = parse_oql("select p.addr.city from p in P")
        kola = translate_query(query)
        assert pretty(kola) == "iterate(Kp(T), city o addr) ! P"

    def test_where_clause(self, tiny_db):
        query = parse_oql("select p.age from p in P where p.age > 25")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_multi_binding_is_hidden_join(self, tiny_db):
        query = parse_oql(
            "select [x, y] from x in P, y in P where y.age > x.age")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_dependent_binding(self, tiny_db):
        query = parse_oql("select y from x in P, y in x.child")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_nested_subquery(self, tiny_db):
        query = parse_oql(
            "select [v, (select p2.grgs from p2 in P where v in p2.cars)]"
            " from v in V")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_boolean_connectives(self, tiny_db):
        query = parse_oql(
            "select p from p in P where p.age > 10 and not p.age > 60")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_string_literal(self, tiny_db):
        query = parse_oql(
            'select p from p in P where p.addr.city == "Montreal"')
        result = aqua_eval(query, tiny_db)
        assert (eval_obj(translate_query(query), tiny_db) == result)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_oql("select from P")
        with pytest.raises(ParseError):
            parse_oql("select p.age frm p in P")
        with pytest.raises(ParseError):
            parse_oql("select p from p in P where p")


class TestSizeMetrics:
    def test_max_env_depth(self, queries):
        assert max_env_depth(queries.garage_aqua) == 2
        assert max_env_depth(SetRef("P")) == 0

    def test_garage_ratio_below_two(self, queries):
        metrics = measure_translation(queries.garage_aqua)
        assert metrics.aqua_nodes == 17
        assert metrics.ratio < 2.0
        assert metrics.within_bound

    def test_omn_bound_over_family(self):
        """Section 4.2: translated size is O(mn)."""
        from repro.workloads.hidden_join import (HiddenJoinSpec,
                                                 hidden_join_family)
        for depth in range(1, 7):
            expr = hidden_join_family(HiddenJoinSpec(depth=depth))
            metrics = measure_translation(expr)
            assert metrics.kola_nodes <= 2 * metrics.bound, (
                depth, metrics)


class TestOqlExtensions:
    def test_count_subquery(self, tiny_db):
        query = parse_oql(
            "select [p, count((select q from q in P"
            " where q.age > p.age))] from p in P")
        kola = translate_query(query)
        assert eval_obj(kola, tiny_db) == aqua_eval(query, tiny_db)
        assert any(node.op == "count" for node in kola.subterms())

    def test_count_of_attribute(self, tiny_db):
        query = parse_oql("select [p, count(p.cars)] from p in P")
        assert (eval_obj(translate_query(query), tiny_db)
                == aqua_eval(query, tiny_db))

    def test_order_by(self, tiny_db):
        query = parse_oql(
            "select p from p in P where p.age > 10 order by p.age")
        kola = translate_query(query)
        result = eval_obj(kola, tiny_db)
        ages = [person.get("age") for person in result]
        assert ages == sorted(ages)
        assert result == aqua_eval(query, tiny_db)

    def test_order_by_requires_bare_projection(self):
        with pytest.raises(ParseError, match="bare variable"):
            parse_oql("select [p, p.age] from p in P order by p.age")

    def test_order_by_foreign_variable_rejected(self):
        with pytest.raises(ParseError, match="projected variable"):
            parse_oql("select y from x in P, y in x.child order by x.age")

    def test_correlated_order_key_untranslatable(self):
        from repro.aqua.terms import Lam, OrderBy, SetRef, Var, Attr, App
        correlated = App(
            Lam("p", OrderBy(Lam("c", Attr(Var("p"), "age")),
                             Attr(Var("p"), "child"))),
            SetRef("P"))
        with pytest.raises(TranslationError, match="ORDER BY"):
            translate_query(correlated)
