"""Unit tests for pattern matching (including associative chain matching)."""

import pytest

from repro.core import constructors as C
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.terms import Sort, fun_var, meta, obj_var, pred_var
from repro.rewrite.match import match, matches
from repro.rewrite.pattern import (build_chain, canon, flatten_compose,
                                   instantiate, metavar_names)
from repro.core.errors import RewriteError


class TestBasicMatching:
    def test_exact_leaf(self):
        assert match(C.id_(), C.id_()) == {}
        assert match(C.id_(), C.pi1()) is None

    def test_metavar_binds(self):
        bindings = match(fun_var("f"), C.prim("age"))
        assert bindings == {"f": C.prim("age")}

    def test_metavar_consistency(self):
        pattern = C.conj(pred_var("p"), pred_var("p"))
        assert matches(pattern, C.conj(C.eq(), C.eq()))
        assert not matches(pattern, C.conj(C.eq(), C.lt()))

    def test_sort_respected(self):
        assert match(fun_var("f"), C.eq()) is None
        assert match(pred_var("p"), C.id_()) is None
        assert match(obj_var("x"), C.lit(3)) is not None
        assert match(meta("a"), C.eq()) is not None  # ANY matches all

    def test_structural_descent(self):
        pattern = parse_pred("$p & Kp(T)")
        subject = parse_pred("eq & Kp(T)")
        assert match(pattern, subject) == {"p": C.eq()}

    def test_label_mismatch(self):
        assert match(C.prim("age"), C.prim("city")) is None

    def test_seed_bindings_not_mutated(self):
        seed = {"f": C.id_()}
        result = match(fun_var("f"), C.id_(), seed)
        assert result == {"f": C.id_()}
        result2 = match(fun_var("f"), C.pi1(), seed)
        assert result2 is None
        assert seed == {"f": C.id_()}


class TestChainMatching:
    def test_two_factor_window(self):
        pattern = parse_fun("$f o id")
        subject = canon(parse_fun("age o id"))
        assert match(pattern, subject) == {"f": C.prim("age")}

    def test_segment_absorption(self):
        pattern = parse_fun("$f o id")
        subject = canon(parse_fun("a o b o id"))
        bindings = match(pattern, subject)
        assert bindings == {"f": canon(parse_fun("a o b"))}

    def test_segment_prefers_shortest(self):
        pattern = parse_fun("$f o $g")
        subject = canon(parse_fun("a o b o c"))
        bindings = match(pattern, subject)
        assert bindings["f"] == C.prim("a")
        assert bindings["g"] == canon(parse_fun("b o c"))

    def test_associativity_irrelevant(self):
        left = C.compose(C.compose(C.prim("a"), C.prim("b")), C.prim("c"))
        right = C.compose(C.prim("a"), C.compose(C.prim("b"), C.prim("c")))
        assert match(canon(left), canon(right)) == {}

    def test_chain_cannot_match_single(self):
        pattern = parse_fun("$f o $g")
        assert match(pattern, C.prim("age")) is None

    def test_structured_factor_consumes_one(self):
        pattern = parse_fun("iterate($p, $f) o iterate($q, $g)")
        subject = canon(parse_fun(
            "iterate(Kp(T), city) o iterate(Kp(T), addr)"))
        bindings = match(pattern, subject)
        assert bindings["f"] == C.prim("city")
        assert bindings["g"] == C.prim("addr")

    def test_repeated_segment_var(self):
        pattern = parse_fun("$f o $f")
        assert matches(pattern, canon(parse_fun("a o a")))
        assert not matches(pattern, canon(parse_fun("a o b")))
        # segment binding must repeat exactly
        assert matches(pattern, canon(parse_fun("a o b o a o b")))

    def test_pred_not_segment_var(self):
        # predicate metavariables never absorb chain segments
        pattern = C.oplus(pred_var("p"), fun_var("f"))
        subject = parse_pred("eq @ age")
        assert match(pattern, subject) is not None


class TestCanon:
    def test_idempotent(self):
        term = parse_obj(
            "iterate(Kp(T), age) o (iterate(Kp(T), id) o flat) ! P")
        assert canon(canon(term)) == canon(term)

    def test_right_association(self):
        term = C.compose(C.compose(C.prim("a"), C.prim("b")), C.prim("c"))
        result = canon(term)
        assert result.args[0] == C.prim("a")
        assert result.args[1].op == "compose"

    def test_invoke_fusion(self):
        term = C.invoke(C.prim("a"), C.invoke(C.prim("b"), C.lit(1)))
        result = canon(term)
        assert result == C.invoke(C.compose(C.prim("a"), C.prim("b")),
                                  C.lit(1))

    def test_canon_preserves_meaning(self, tiny_db):
        from repro.core.eval import eval_obj
        term = parse_obj("iterate(Kp(T), city) o (iterate(Kp(T), addr)) ! P")
        assert eval_obj(term, tiny_db) == eval_obj(canon(term), tiny_db)

    def test_flatten_and_rebuild(self):
        factors = [C.prim("a"), C.prim("b"), C.prim("c")]
        chain = build_chain(factors)
        assert flatten_compose(chain) == factors
        with pytest.raises(RewriteError):
            build_chain([])


class TestInstantiate:
    def test_basic(self):
        pattern = parse_fun("iterate($p, $f)")
        result = instantiate(pattern, {"p": C.eq(), "f": C.id_()})
        assert result == C.iterate(C.eq(), C.id_())

    def test_unbound_raises(self):
        with pytest.raises(RewriteError, match="unbound"):
            instantiate(fun_var("f"), {})

    def test_metavar_names(self):
        assert metavar_names(parse_fun("iterate($p, $f) o $f")) == {"p", "f"}
