"""Unit tests for the cost model."""

import pytest

from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.optimizer.cost import (CostModel, conjunction_order_cost,
                                  estimate_cost, predicate_rank)


class TestEstimates:
    def test_scan_scales_with_collection(self, db):
        small = estimate_cost(parse_obj("iterate(Kp(T), id) ! A"), db)
        large = estimate_cost(parse_obj("iterate(Kp(T), id) ! P"), db)
        assert large > small

    def test_selection_reduces_output(self, db):
        model = CostModel(selectivity=0.1)
        query = parse_obj("iterate(Kp(T), id) o "
                          "iterate(Cp(lt, 30) @ age, id) ! P")
        unselective = CostModel(selectivity=0.9)
        assert model.estimate(query, db) < unselective.estimate(query, db)

    def test_nested_query_quadratic(self, db, queries):
        nested = estimate_cost(queries.kg1, db)
        flat = estimate_cost(parse_obj("iterate(Kp(T), id) ! V"), db)
        stats = db.stats()
        assert nested > flat * stats["P"] * 0.1  # clearly superlinear

    def test_unknown_collection_defaults(self, db):
        cost = estimate_cost(parse_obj("iterate(Kp(T), id) ! Z"), db)
        assert cost > 0

    def test_non_invoke_is_unit(self, db):
        assert estimate_cost(parse_obj("[1, 2]"), db) == 1.0

    def test_join_quadratic(self, db):
        join_cost = estimate_cost(parse_obj("join(Kp(T), id) ! [P, P]"),
                                  db)
        scan_cost = estimate_cost(parse_obj("iterate(Kp(T), id) ! P"), db)
        assert join_cost > scan_cost * 10

    def test_cond_takes_max_branch(self, db):
        cheap = parse_obj("iterate(Kp(T), con(Cp(lt, 3) @ age, id, id))"
                          " ! P")
        pricey = parse_obj(
            "iterate(Kp(T), con(Cp(lt, 3) @ age, id,"
            " iterate(Kp(T), id) o Kf(P))) ! P")
        assert estimate_cost(pricey, db) > estimate_cost(cheap, db)

    def test_fanout_configurable(self, db, queries):
        low = CostModel(fanout=1.0).estimate(queries.kg1, db)
        high = CostModel(fanout=8.0).estimate(queries.kg1, db)
        assert high > low


class TestPredicateRanking:
    def test_rank_monotone_in_structure(self):
        small = parse_pred("Cp(lt, 3)")
        bigger = parse_pred("Cp(lt, 3) & Cp(lt, 5)")
        assert predicate_rank(bigger) > predicate_rank(small)

    def test_order_cost_discounts_later_conjuncts(self):
        heavy = parse_pred("subset @ <id, id>")
        light = parse_pred("Kp(T)")
        from repro.core import constructors as C
        heavy_first = C.conj(heavy, light)
        light_first = C.conj(light, heavy)
        assert (conjunction_order_cost(light_first)
                < conjunction_order_cost(heavy_first))

    def test_single_conjunct_cost_is_rank(self):
        pred = parse_pred("Cp(lt, 3)")
        assert conjunction_order_cost(pred) == predicate_rank(pred)
