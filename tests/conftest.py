"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rewrite.engine import Engine
from repro.rules.registry import standard_rulebase
from repro.schema.generator import GeneratorConfig, generate_database
from repro.workloads.queries import paper_queries


@pytest.fixture(scope="session")
def rulebase():
    """The standard rule base (expensive to build: type-checks ~120 rules)."""
    return standard_rulebase()


@pytest.fixture()
def engine():
    return Engine()


@pytest.fixture(scope="session")
def db():
    """A mid-sized deterministic database."""
    return generate_database(GeneratorConfig(seed=2026))


@pytest.fixture(scope="session")
def tiny_db():
    """A small database for per-test evaluation."""
    return generate_database(GeneratorConfig(
        n_persons=8, n_vehicles=5, n_addresses=4, seed=7))


@pytest.fixture(scope="session")
def db_pair(db, tiny_db):
    """Two differently-shaped databases (equivalences should hold on both)."""
    return (tiny_db, db)


@pytest.fixture(scope="session")
def queries():
    """The paper's example queries."""
    return paper_queries()
