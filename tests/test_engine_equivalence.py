"""Equivalence property: the indexed, incremental engine is
observationally identical to the reference linear engine.

The optimizations in :mod:`repro.rewrite.engine` — head-indexed rule
dispatch (:class:`~repro.rewrite.ruleindex.RuleIndex`), subtree pruning
by contained-operator sets, and incremental resume after each rewrite —
are pure dispatch/traversal shortcuts.  They must never change *which*
rule fires *where*: for every input term, rule group, and strategy the
two engines must produce the same normal form, the same derivation step
sequence (rules, forms, and paths), and the same per-rule fire counts.

The corpus is shared with :mod:`tests.test_fuzz_derivations`: the
paper's example queries plus the hidden-join family at several depths —
exactly the terms the optimizer pipeline sees.
"""

from __future__ import annotations

import pytest

from repro.rewrite.engine import Engine
from repro.rewrite.trace import Derivation

from tests.test_fuzz_derivations import _QUERIES

# Groups that loop (structural rules) are capped by max_steps; the
# equivalence must hold on capped runs too, so a modest cap keeps the
# product corpus x groups x strategies fast.
_MAX_STEPS = 40

_GROUPS = ["simplify", "fig4", "fig5", "fig8", "companions", "structural"]


def _run(engine: Engine, term, rules, strategy):
    derivation = Derivation("equiv")
    engine.stats.reset()
    result = engine.normalize_result(term, rules, max_steps=_MAX_STEPS,
                                     strategy=strategy,
                                     derivation=derivation)
    steps = [(step.rule.name, step.before, step.after, step.path)
             for step in derivation.steps]
    return result, steps, dict(engine.stats.per_rule)


@pytest.mark.parametrize("strategy", ["topdown", "bottomup"])
@pytest.mark.parametrize("group", _GROUPS)
def test_indexed_engine_matches_linear_reference(group, strategy,
                                                 rulebase):
    """Same results, same derivations, same fire counts — per group,
    per strategy, across the whole fuzz corpus."""
    rules = rulebase.group(group)
    fast = Engine()                                  # indexed + incremental
    slow = Engine(indexed=False, incremental=False)  # reference linear

    for query in _QUERIES:
        fast_result, fast_steps, fast_counts = _run(fast, query, rules,
                                                    strategy)
        slow_result, slow_steps, slow_counts = _run(slow, query, rules,
                                                    strategy)
        # interning makes "same term" an identity check
        assert fast_result.term is slow_result.term
        assert fast_result.steps_used == slow_result.steps_used
        assert fast_result.reached_fixpoint == slow_result.reached_fixpoint
        assert fast_steps == slow_steps
        assert fast_counts == slow_counts


def test_indexed_engine_never_attempts_more_matches(rulebase):
    """The index only ever *removes* match attempts."""
    rules = rulebase.group("simplify")
    fast = Engine()
    slow = Engine(indexed=False, incremental=False)
    fast.stats.reset()
    slow.stats.reset()
    for query in _QUERIES:
        fast.normalize(query, rules, max_steps=_MAX_STEPS)
        slow.normalize(query, rules, max_steps=_MAX_STEPS)
    assert fast.stats.match_attempts <= slow.stats.match_attempts
    assert fast.stats.rewrites == slow.stats.rewrites


@pytest.mark.parametrize("indexed,incremental",
                         [(True, False), (False, True)])
def test_each_optimization_is_independently_equivalent(indexed,
                                                       incremental,
                                                       rulebase):
    """Indexing and incremental resume must each be sound in isolation,
    not only in the default combination."""
    rules = rulebase.group("simplify")
    variant = Engine(indexed=indexed, incremental=incremental)
    reference = Engine(indexed=False, incremental=False)
    for query in _QUERIES:
        v_result, v_steps, v_counts = _run(variant, query, rules,
                                           "topdown")
        r_result, r_steps, r_counts = _run(reference, query, rules,
                                           "topdown")
        assert v_result.term is r_result.term
        assert v_steps == r_steps
        assert v_counts == r_counts
