"""Property-based tests (hypothesis) on core data structures and
invariants.

Strategy sources:

* random well-typed KOLA functions/predicates via the larch generator
  (driven by a hypothesis-chosen seed, so shrinking works on the seed);
* random OQL-fragment queries assembled from hypothesis primitives;
* random value structures for the value domain.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aqua.eval import aqua_eval
from repro.aqua.terms import (App, Attr, BinCmp, BoolOp, Const, In, Lam,
                              Not, PairE, Sel, SetRef, Var)
from repro.core import constructors as C
from repro.core.eval import apply_fn, eval_obj
from repro.core.eval import test_pred as check_pred
from repro.core.parser import parse_fun, parse_obj, parse_pred, parse_query
from repro.core.pretty import pretty
from repro.core.terms import Sort
from repro.core.types import INT, Inferencer, TCon, fun_t, pair_t, set_t
from repro.core.values import KPair, freeze, kset
from repro.fuzz.strategies import kola_queries
from repro.larch.gen import TermGenerator
from repro.rewrite.pattern import canon
from repro.schema.generator import (GeneratorConfig, generate_database,
                                    tiny_database)
from repro.schema.paper_schema import paper_schema

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# -- Term/value invariants ----------------------------------------------------

@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_generated_functions_round_trip_parser(seed):
    """pretty/parse is the identity on random well-typed functions."""
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.function(pair_t(INT, INT), INT)
    # generated composition trees may be left-nested; round-trip holds
    # modulo the canonical (right-nested) form
    assert canon(parse_fun(pretty(term))) == canon(term)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_generated_predicates_round_trip_parser(seed):
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.predicate(pair_t(INT, set_t(INT)))
    assert canon(parse_pred(pretty(term))) == canon(term)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_canon_preserves_function_meaning(seed):
    """canon (re-association + invoke fusion) never changes results."""
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.function(set_t(INT), set_t(INT))
    value = generator.value(set_t(INT))
    assert apply_fn(canon(term), value) == apply_fn(term, value)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_inferred_types_are_inhabited(seed):
    """The value generator produces values the evaluator accepts for the
    generator's own types — typing and semantics agree."""
    generator = TermGenerator(seed=seed, max_depth=2)
    term = generator.function(INT, set_t(INT))
    inferred = Inferencer().infer(term)
    assert isinstance(inferred, TCon) and inferred.name == "Fun"
    result = apply_fn(term, generator.value(INT))
    assert isinstance(result, frozenset)


@given(st.recursive(
    st.integers(-5, 5) | st.text(max_size=3),
    lambda children: st.lists(children, max_size=3).map(tuple).filter(
        lambda t: len(t) == 2) | st.lists(children, max_size=3),
    max_leaves=12))
@_SETTINGS
def test_freeze_produces_hashable(value):
    frozen = freeze(value)
    hash(frozen)  # must not raise
    assert freeze(frozen) == frozen  # idempotent


# -- rewrite-engine invariants ---------------------------------------------------

@given(seed=st.integers(0, 5_000))
@_SETTINGS
def test_simplify_group_preserves_meaning(seed, rulebase_session):
    """Exhaustive simplification never changes a random function's
    results."""
    from repro.rewrite.engine import Engine
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.function(set_t(INT), set_t(INT))
    value = generator.value(set_t(INT))
    engine = Engine()
    simplified = engine.normalize(term, rulebase_session.group("simplify"),
                                  max_steps=300)
    assert apply_fn(simplified, value) == apply_fn(term, value)


@given(seed=st.integers(0, 5_000))
@_SETTINGS
def test_simplify_never_grows_terms(seed, rulebase_session):
    from repro.rewrite.engine import Engine
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.function(set_t(INT), set_t(INT))
    engine = Engine()
    simplified = engine.normalize(term, rulebase_session.group("simplify"),
                                  max_steps=300)
    assert simplified.size() <= term.size()


# -- nest/unnest invariants ---------------------------------------------------------

@given(
    source=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                   max_size=12),
    keys=st.sets(st.integers(0, 5), max_size=6))
@_SETTINGS
def test_nest_output_cardinality_is_key_set(source, keys):
    """The paper's NULL-free nest: output cardinality == |B| always."""
    pairs = kset(KPair(a, b) for a, b in source)
    result = apply_fn(C.nest(C.pi1(), C.pi2()), KPair(pairs, kset(keys)))
    assert len(result) == len(keys)
    assert {p.fst for p in result} == set(keys)


@given(
    source=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                   max_size=12))
@_SETTINGS
def test_unnest_nest_round_trip(source):
    """nest . unnest restores any keyed family exactly when nesting is
    relative to the original key set."""
    keys = kset({a for a, _ in source})
    groups: dict[int, set] = {a: set() for a, _ in source}
    for a, b in source:
        groups[a].add(b)
    family = kset(KPair(a, kset(bs)) for a, bs in groups.items())
    flat_pairs = apply_fn(C.unnest(C.pi1(), C.pi2()), family)
    rebuilt = apply_fn(C.nest(C.pi1(), C.pi2()), KPair(flat_pairs, keys))
    assert rebuilt == family


# -- translation invariants ------------------------------------------------------------

_DB = generate_database(GeneratorConfig(n_persons=10, n_vehicles=6,
                                        n_addresses=4, seed=99))

_comparison = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])


@st.composite
def simple_predicates(draw, var: str):
    """Random boolean expressions over a Person variable."""
    base = draw(st.sampled_from(["age-cmp", "membership", "true"]))
    if base == "age-cmp":
        op = draw(_comparison)
        bound = draw(st.integers(0, 90))
        pred = BinCmp(op, Attr(Var(var), "age"), Const(bound))
    elif base == "membership":
        pred = In(Var(var), Attr(Var(var), "child"))
    else:
        pred = BinCmp("==", Const(1), Const(1))
    if draw(st.booleans()):
        pred = Not(pred)
    if draw(st.booleans()):
        op2 = draw(st.sampled_from(["and", "or"]))
        bound = draw(st.integers(0, 90))
        pred = BoolOp(op2, pred,
                      BinCmp("<", Attr(Var(var), "age"), Const(bound)))
    return pred


@st.composite
def simple_queries(draw):
    """Random single- or double-level queries over P."""
    projection = draw(st.sampled_from(["ident", "age", "pair", "child-sel"]))
    pred = draw(simple_predicates("p"))
    source = Sel(Lam("p", pred), SetRef("P"))
    if projection == "ident":
        return App(Lam("p", Var("p")), source)
    if projection == "age":
        return App(Lam("p", Attr(Var("p"), "age")), source)
    if projection == "pair":
        return App(Lam("p", PairE(Var("p"), Attr(Var("p"), "age"))), source)
    inner_pred = draw(simple_predicates("c"))
    return App(Lam("p", PairE(Var("p"),
                              Sel(Lam("c", inner_pred),
                                  Attr(Var("p"), "child")))), source)


@given(query=simple_queries())
@_SETTINGS
def test_translation_preserves_meaning(query):
    """AQUA evaluation == KOLA evaluation of the translation, for random
    queries (the translator's core contract)."""
    from repro.translate.aqua_to_kola import translate_query
    kola = translate_query(query)
    assert eval_obj(kola, _DB) == aqua_eval(query, _DB)


@given(query=simple_queries())
@_SETTINGS
def test_optimizer_end_to_end_preserves_meaning(query, rulebase_session):
    """simplify + untangle + plan choice never change results."""
    from repro.optimizer.optimizer import Optimizer
    optimizer = Optimizer(rulebase_session)
    optimized = optimizer.optimize(query, _DB)
    assert optimized.execute(_DB) == aqua_eval(query, _DB)


# -- generator-backed whole-query invariants ----------------------------------
#
# kola_queries() maps hypothesis-drawn integers through the seeded
# type-directed generator, so a falsifying example shrinks to a replay
# seed (`python -m repro.cli fuzz --seed N --count 1`).

_TINY_DB = tiny_database(seed=17)


def _direct(query):
    if query.op == "test":
        return check_pred(query.args[0], eval_obj(query.args[1], _TINY_DB),
                          _TINY_DB)
    return eval_obj(query, _TINY_DB)


@given(query=kola_queries())
@_SETTINGS
def test_fuzz_queries_are_well_typed_and_round_trip(query):
    from repro.core.types import well_typed
    assert well_typed(query, paper_schema())
    assert parse_query(pretty(query)) == query


@given(query=kola_queries())
@_SETTINGS
def test_optimizer_preserves_fuzz_query_meaning(query, rulebase_session):
    """End-to-end optimization of arbitrary generated queries — not just
    the translated OQL fragment above — never changes results."""
    from repro.optimizer.optimizer import Optimizer
    optimizer = Optimizer(rulebase_session)
    optimized = optimizer.optimize(query, _TINY_DB)
    assert optimized.execute(_TINY_DB) == _direct(query)


# -- session-scoped fixture bridge (hypothesis needs plain args) -------------------------

@pytest.fixture(scope="session")
def rulebase_session():
    from repro.rules.registry import standard_rulebase
    return standard_rulebase()
