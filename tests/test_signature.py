"""Sanity tests over the operator signature registry (the fixed
combinator set the paper commits to)."""

import pytest

from repro.core import constructors as C
from repro.core.signature import CONVERSES, EXECUTABLE_OPS, REGISTRY
from repro.core.terms import Sort


class TestRegistry:
    def test_every_operator_documented(self):
        for name, signature in REGISTRY.items():
            assert signature.doc, f"{name} lacks semantics documentation"

    def test_fixed_set_is_closed(self):
        """The paper's design point: 'algebraic query optimization must
        reference a known (i.e. fixed) set of operators'."""
        assert "meta" in REGISTRY
        assert EXECUTABLE_OPS == frozenset(REGISTRY) - {"meta"}

    def test_converses_involutive(self):
        for name, converse in CONVERSES.items():
            assert CONVERSES[converse] == name

    def test_sorts_partition(self):
        for name, signature in REGISTRY.items():
            assert signature.result_sort in (Sort.FUN, Sort.PRED,
                                             Sort.OBJ, Sort.ANY)

    def test_label_flags_respected_by_constructors(self):
        # a few spot checks that constructors agree with the registry
        assert REGISTRY["prim"].needs_label
        assert not REGISTRY["id"].needs_label
        assert REGISTRY["lit"].needs_label

    def test_table1_operator_inventory(self):
        """Every operator of the paper's Table 1 is present."""
        table1 = {"id", "pi1", "pi2", "eq", "leq", "gt", "isin",
                  "compose", "pair", "cross", "const_f", "curry_f",
                  "cond", "oplus", "conj", "disj", "inv", "const_p",
                  "curry_p"}
        assert table1 <= set(REGISTRY)

    def test_table2_operator_inventory(self):
        table2 = {"flat", "iterate", "iter", "join", "nest", "unnest"}
        assert table2 <= set(REGISTRY)

    def test_every_executable_op_constructible(self):
        """Each registered operator is reachable through mk with sorted
        sample arguments — no orphan registry entries."""
        from repro.core.terms import mk
        samples = {Sort.FUN: C.id_(), Sort.PRED: C.eq(),
                   Sort.OBJ: C.lit(1)}
        sample_labels = {"prim": "age", "pprim": "adult",
                         "setop": "union", "lit": 1, "setname": "P",
                         "meta": ("x", Sort.ANY)}
        for name, signature in REGISTRY.items():
            args = tuple(samples[s] for s in signature.arg_sorts)
            label = sample_labels.get(name) if signature.needs_label \
                else None
            term = mk(name, *args, label=label) if label is not None \
                else mk(name, *args)
            assert term.op == name

    def test_every_executable_op_evaluable_or_rejecting(self):
        """Every function/predicate operator either evaluates on a
        sample input or raises a *typed* EvalError — never a bare
        Python crash (AttributeError/KeyError/...)."""
        from repro.core.errors import EvalError
        from repro.core.eval import apply_fn, test_pred as check_pred
        from repro.core.terms import mk
        from repro.core.values import KPair, kset
        samples = {Sort.FUN: C.id_(), Sort.PRED: C.eq(),
                   Sort.OBJ: C.lit(1)}
        inputs = [1, KPair(1, 2), kset([1, 2]),
                  KPair(kset([1]), kset([2]))]
        for name, signature in REGISTRY.items():
            if signature.needs_label or signature.result_sort not in (
                    Sort.FUN, Sort.PRED):
                continue
            term = mk(name, *(samples[s] for s in signature.arg_sorts))
            runner = (apply_fn if signature.result_sort is Sort.FUN
                      else check_pred)
            for value in inputs:
                try:
                    runner(term, value)
                except EvalError:
                    pass  # typed rejection is fine
