"""Unit tests for the rewrite engine: traversal, windows, peels, stats."""

import pytest

from repro.core import constructors as C
from repro.core.eval import eval_obj
from repro.core.parser import parse_fun, parse_obj
from repro.core.terms import Sort
from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.rewrite.rule import rule
from repro.rewrite.rulebase import RuleBase
from repro.rewrite.trace import Derivation

R1 = rule("t-r1", "$f o id", "$f")
R2 = rule("t-r2", "id o $f", "$f")
R11 = rule("t-r11", "iterate($p, $f) o iterate($q, $g)",
           "iterate($q & ($p @ $g), $f o $g)")
R19 = rule("t-r19", "iterate(Kp(T), <id, Kf($B)>) ! $A",
           "nest(pi1, pi2) o <join(Kp(T), id), pi1> ! [$A, $B]",
           sort=Sort.OBJ, bidirectional=False)


class TestRewriteOnce:
    def test_root_rewrite(self, engine):
        term = canon(parse_fun("age o id"))
        result = engine.rewrite_once(term, [R1])
        assert result is not None
        assert result.term == C.prim("age")
        assert result.rule is R1

    def test_no_match_returns_none(self, engine):
        assert engine.rewrite_once(C.prim("age"), [R1]) is None

    def test_subterm_rewrite(self, engine):
        term = canon(parse_fun("iterate(Kp(T), age o id)"))
        result = engine.rewrite_once(term, [R1])
        assert result.term == parse_fun("iterate(Kp(T), age)")
        assert result.path == (1,)

    def test_rule_priority_order(self, engine):
        term = canon(parse_fun("id o age o id"))
        result = engine.rewrite_once(term, [R1, R2])
        # R1 tried first at the whole chain window
        assert result.rule is R1

    def test_bottomup_strategy(self, engine):
        inner_only = rule("inner", "iterate(Kp(T), id)", "id")
        term = canon(parse_fun(
            "iterate(Kp(T), id) o iterate(Kp(T), iterate(Kp(T), id))"))
        result = engine.rewrite_once(term, [inner_only],
                                     strategy="bottomup")
        # bottom-up finds the innermost occurrence first
        assert result.path != ()


class TestChainWindows:
    def test_window_inside_long_chain(self, engine):
        term = canon(parse_fun(
            "flat o iterate(Kp(T), city) o iterate(Kp(T), addr) o flat"))
        result = engine.rewrite_once(term, [R11])
        expected = canon(parse_fun(
            "flat o iterate(Kp(T) & (Kp(T) @ addr), city o addr) o flat"))
        assert result.term == expected

    def test_window_at_chain_start(self, engine):
        term = canon(parse_fun(
            "iterate(Kp(T), city) o iterate(Kp(T), addr) o flat"))
        result = engine.rewrite_once(term, [R11])
        assert result is not None
        factors_before = 3
        assert len(canon(result.term).args) == 2  # still a chain

    def test_rewrite_preserves_meaning(self, engine, tiny_db):
        query = parse_obj(
            "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P")
        result = engine.rewrite_once(query, [R11])
        assert (eval_obj(query, tiny_db)
                == eval_obj(result.term, tiny_db))


class TestInvokePeeling:
    def test_peel_last_factor(self, engine):
        query = canon(parse_obj(
            "iterate(Kp(T), <pi1, pi2>) o iterate(Kp(T), <id, Kf(B)>) ! A"))
        result = engine.rewrite_once(query, [R19])
        assert result is not None
        # the prefix stage is preserved and the argument became [A, B]
        assert result.term.op == "invoke"
        assert result.term.args[1] == C.pairobj(C.setname("A"),
                                                C.setname("B"))

    def test_direct_invoke_match(self, engine):
        query = canon(parse_obj("iterate(Kp(T), <id, Kf(B)>) ! A"))
        result = engine.rewrite_once(query, [R19])
        assert result is not None


class TestNormalize:
    def test_fixpoint(self, engine):
        term = canon(parse_fun("id o age o id o id"))
        result = engine.normalize(term, [R1, R2])
        assert result == C.prim("age")

    def test_derivation_recorded(self, engine):
        derivation = Derivation("test")
        term = canon(parse_fun("id o age o id"))
        engine.normalize(term, [R1, R2], derivation=derivation)
        assert len(derivation) == 2
        assert derivation.initial == term
        assert derivation.final == C.prim("age")
        assert derivation.forms()[0] == term

    def test_max_steps_caps_divergence(self, engine):
        looper = rule("loop", "$p & $q", "$q & $p", sort=Sort.PRED)
        from repro.core.parser import parse_pred
        from repro.rewrite.engine import MaxStepsExceededWarning
        term = parse_pred("eq & lt")
        with pytest.warns(MaxStepsExceededWarning):
            result = engine.normalize(term, [looper], max_steps=7)
        assert result is not None  # terminated despite the loop

    def test_normalize_result_reports_fixpoint(self, engine):
        term = canon(parse_fun("id o age o id o id"))
        result = engine.normalize_result(term, [R1, R2])
        assert result.reached_fixpoint
        assert result.steps_used == 3
        assert result.term == C.prim("age")

    def test_normalize_result_reports_cap_hit(self, engine):
        looper = rule("loop2", "$p & $q", "$q & $p", sort=Sort.PRED)
        from repro.core.parser import parse_pred
        term = parse_pred("eq & lt")
        result = engine.normalize_result(term, [looper], max_steps=7)
        assert not result.reached_fixpoint
        assert result.steps_used == 7
        # the fixpoint probe must not perturb the fire counts
        assert engine.stats.per_rule["loop2"] == 7

    def test_normalize_result_exact_cap_is_fixpoint(self, engine):
        term = canon(parse_fun("age o id"))
        result = engine.normalize_result(term, [R1], max_steps=1)
        assert result.reached_fixpoint
        assert result.steps_used == 1

    def test_no_warning_on_fixpoint(self, engine):
        import warnings
        term = canon(parse_fun("id o age o id"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert engine.normalize(term, [R1, R2]) == C.prim("age")

    def test_stats_counted(self, engine):
        engine.stats.reset()
        term = canon(parse_fun("id o age"))
        engine.normalize(term, [R1, R2])
        assert engine.stats.rewrites == 1
        assert engine.stats.match_attempts >= 1
        assert engine.stats.nodes_visited >= 1

    def test_apply_rule_helper(self, engine):
        term = canon(parse_fun("age o id"))
        assert engine.apply_rule(term, R1) == C.prim("age")
        assert engine.apply_rule(C.prim("age"), R1) is None


class TestDerivationRendering:
    def test_render_contains_rule_labels(self, engine):
        derivation = Derivation("demo")
        numbered = rule("rn", "$f o id", "$f", number=1)
        term = canon(parse_fun("age o id"))
        engine.normalize(term, [numbered], derivation=derivation)
        text = derivation.render()
        assert "demo" in text
        assert "[1]" in text
        assert "age o id" in text

    def test_render_empty(self):
        assert "(no steps)" in Derivation("t").render()

    def test_verify_catches_bad_step(self, tiny_db):
        bad = rule("bad-eta", "iterate(Kp(T), $f)",
                   "iterate(Kp(F), $f)", bidirectional=False)
        derivation = Derivation()
        engine = Engine()
        query = parse_obj("iterate(Kp(T), age) ! P")
        engine.normalize(query, [bad], derivation=derivation)
        with pytest.raises(AssertionError, match="changed the query"):
            derivation.verify([tiny_db])


class TestRuleBase:
    def test_registry_operations(self):
        base = RuleBase()
        base.add(R1, ["cleanup"])
        base.add(R11)
        assert base.get("t-r1") is R1
        assert len(base) == 2
        assert "t-r1" in base
        assert [r.name for r in base.group("cleanup")] == ["t-r1"]

    def test_rev_lookup(self):
        base = RuleBase()
        base.add(R11)
        rev = base.get("t-r11-rev")
        assert rev.lhs == R11.rhs

    def test_duplicate_rejected(self):
        from repro.core.errors import RewriteError
        base = RuleBase()
        base.add(R1)
        with pytest.raises(RewriteError, match="duplicate"):
            base.add(R1)

    def test_unknown_lookups(self):
        from repro.core.errors import RewriteError
        base = RuleBase()
        with pytest.raises(RewriteError):
            base.get("nope")
        with pytest.raises(RewriteError):
            base.group("nope")
        with pytest.raises(RewriteError):
            base.by_number(99)

    def test_by_number(self, rulebase):
        assert rulebase.by_number(11).name == "r11"

    def test_extend_group_validates(self, rulebase):
        from repro.core.errors import RewriteError
        with pytest.raises(RewriteError):
            rulebase.extend_group("x", ["does-not-exist"])
        # The failed call must not leave a stray group behind (the
        # session rulebase fixture is shared suite-wide).
        assert "x" not in rulebase.group_names()


class TestRewriteEverywhere:
    def test_all_positions_enumerated(self, engine):
        term = canon(parse_fun("(age o id) o iterate(Kp(T), city o id)"))
        results = engine.rewrite_everywhere(term, R1)
        # $f o id matches both the outer chain and the inner argument
        assert len(results) >= 2
        for result in results:
            assert result.term != term

    def test_whole_term_rebuilt(self, engine, tiny_db):
        from repro.core.eval import eval_obj
        query = parse_obj(
            "iterate(Kp(T), city o id) o iterate(Kp(T), addr o id) ! P")
        results = engine.rewrite_everywhere(query, R1)
        assert len(results) == 2
        reference = eval_obj(query, tiny_db)
        for result in results:
            assert eval_obj(result.term, tiny_db) == reference

    def test_no_matches_empty(self, engine):
        assert engine.rewrite_everywhere(C.prim("age"), R1) == []

    def test_per_rule_stats(self, engine):
        engine.stats.reset()
        term = canon(parse_fun("id o age o id"))
        engine.normalize(term, [R1, R2])
        assert engine.stats.per_rule.get("t-r1", 0) >= 1
        report = engine.stats.report()
        assert "t-r1" in report

    def test_stats_report_empty(self):
        from repro.rewrite.engine import EngineStats
        assert EngineStats().report() == "(no rewrites)"


class TestRuleIndex:
    def test_buckets_by_head_and_keeps_order(self):
        from repro.rewrite.ruleindex import RuleIndex
        index = RuleIndex([R1, R11, R2])
        assert index.candidates("compose") == (R1, R11, R2)
        assert index.candidates("iterate") == ()
        assert index.heads == {"compose"}
        assert len(index) == 3

    def test_invoke_bucket(self):
        from repro.rewrite.ruleindex import RuleIndex
        index = RuleIndex([R1, R19])
        assert index.candidates("invoke") == (R19,)
        assert index.candidates("compose") == (R1,)

    def test_rule_index_memoized(self):
        from repro.rewrite.ruleindex import rule_index
        assert rule_index((R1, R2)) is rule_index((R1, R2))

    def test_engine_accepts_prebuilt_index(self, engine):
        from repro.rewrite.ruleindex import rule_index
        term = canon(parse_fun("id o age o id o id"))
        assert engine.normalize(term, rule_index((R1, R2))) == C.prim("age")

    def test_index_skips_attempts(self):
        engine = Engine()
        term = canon(parse_fun("iterate(Kp(T), age o id)"))
        engine.normalize(term, [R19, R1])  # R19 heads invoke: never tried
        assert engine.stats.attempts_skipped_by_index > 0
        assert engine.stats.per_rule == {"t-r1": 1}

    def test_linear_engine_matches_indexed(self):
        term = canon(parse_fun(
            "flat o iterate(Kp(T), city) o iterate(Kp(T), addr) o id"))
        rules = [R1, R2, R11]
        fast, slow = Engine(), Engine(indexed=False, incremental=False)
        assert (fast.normalize(term, rules)
                is slow.normalize(term, rules))
        assert fast.stats.per_rule == slow.stats.per_rule
        assert fast.stats.match_attempts < slow.stats.match_attempts
