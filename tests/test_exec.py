"""Tests for the fused executable plan backend: lowering, fusion,
emission, database retargeting, the columnar fast path, the wire
codec, and the CLI ``run`` entry point."""

import pytest

from repro.cli import main
from repro.core import constructors as C
from repro.core.errors import EvalError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.exec import compile_executable, fuse, lower_query
from repro.exec.columnar import (attr_chain, cache_stats, clear_cache,
                                 column, columnar_scan)
from repro.exec.fuse import materialization_points
from repro.exec.ir import (Compute, Dedup, Filter, Flatten, JoinProbe,
                           Map, NestGroup, Pipeline, Scan, Sort,
                           UnnestFlatten, WrapEnv, render)
from repro.optimizer.physical import FusedPlan
from repro.parallel.portable import decode_plan, encode_plan


def _identical(a, b):
    return type(a) is type(b) and a == b


class TestLowering:
    def test_iterate_lowers_to_filter_map(self):
        lowered = lower_query(
            parse_obj("iterate(gt @ <age, Kf(25)>, age) ! P"))
        pipeline = lowered.pipeline
        assert isinstance(pipeline.source, Scan)
        assert pipeline.source.kind == "set"
        kinds = [type(op) for op in pipeline.ops]
        assert kinds == [Filter, Map, Dedup]
        assert pipeline.sink == "set"
        assert lowered.fully_lowered

    def test_trivial_pred_and_fn_are_elided(self):
        lowered = lower_query(parse_obj("iterate(Kp(T), id) ! P"))
        assert [type(op) for op in lowered.pipeline.ops] == [Dedup]

    def test_chain_inlines_across_invoke_boundaries(self):
        # Nested invoke: the producer's pipeline is inlined into the
        # consumer's — one source scan, no intermediate query.
        lowered = lower_query(parse_obj(
            "iterate(Kp(T), id) ! (iterate(Kp(T), age) ! P)"))
        assert isinstance(lowered.pipeline.source, Scan)
        assert lowered.pipeline.source.source == C.setname("P")
        assert lowered.fully_lowered

    def test_aggregate_sink(self):
        lowered = lower_query(parse_obj("count o iterate(Kp(T), age) ! P"))
        assert lowered.pipeline.sink == "count"
        lowered = lower_query(parse_obj("ssum o iterate(Kp(T), age) ! P"))
        assert lowered.pipeline.sink == "ssum"

    def test_bag_and_list_kinds(self):
        lowered = lower_query(parse_obj(
            "distinct o bag_iterate(Kp(T), city) o tobag ! P"))
        assert lowered.pipeline.sink == "set"
        lowered = lower_query(parse_obj("listify(age) ! P"))
        assert lowered.pipeline.sink == "list"
        assert any(isinstance(op, Sort) for op in lowered.pipeline.ops)

    def test_join_probe_strategies(self):
        by_membership = lower_query(parse_obj(
            "join(in @ (id >< cars), pi1) ! [V, P]"))
        assert by_membership.pipeline.source.strategy == "membership-probe"
        by_equality = lower_query(parse_obj(
            "join(eq @ (city o addr >< city o addr), pi1) ! [P, P]"))
        assert by_equality.pipeline.source.strategy == "hash-equi"
        generic = lower_query(parse_obj(
            "join(gt @ <age o pi1, age o pi2>, pi1) ! [P, P]"))
        assert generic.pipeline.source.strategy == "nested-loop"

    def test_joinnest_shape_becomes_nest_of_probe(self):
        lowered = lower_query(parse_obj(
            "nest(pi1, pi2) o (unnest(pi1, pi2) >< id)"
            " o <join(in @ (id >< cars), (id >< grgs)), pi1> ! [V, P]"))
        group = lowered.pipeline.source
        assert isinstance(group, NestGroup)
        assert isinstance(group.source.source, JoinProbe)
        assert group.source.source.strategy == "membership-probe"
        assert lowered.fully_lowered

    def test_unlowerable_prefix_becomes_post(self):
        lowered = lower_query(parse_obj(
            "pi1 o <count, count> o iterate(Kp(T), age) ! P"))
        assert lowered.post is not None
        assert lowered.pipeline.sink == "set"
        assert not lowered.fully_lowered

    def test_opaque_source_falls_back_to_compute(self):
        lowered = lower_query(parse_obj("pi1 ! [1, 2]"))
        assert isinstance(lowered.pipeline.source, Compute)
        assert not lowered.fully_lowered

    def test_test_query_keeps_predicate(self):
        lowered = lower_query(parse_obj("Cp(lt, 3) ? (count ! P)"))
        assert lowered.post_pred is not None


class TestFusion:
    def test_iterate_chain_collapses_to_one_boundary(self):
        lowered = lower_query(parse_obj(
            "iterate(Kp(T), city) o iterate(Kp(T), addr)"
            " o iterate(Kp(T), id) ! P"))
        before = materialization_points(lowered.pipeline)
        fused = fuse(lowered)
        after = materialization_points(fused.pipeline)
        assert before == 3
        assert after == 0  # set sink deduplicates; no boundary survives

    def test_dedup_guarding_aggregate_survives(self):
        fused = fuse(lower_query(parse_obj(
            "count o iterate(Kp(T), city o addr) ! P")))
        # count is duplicate-sensitive: exactly one Dedup must remain.
        dedups = [op for op in fused.pipeline.ops
                  if isinstance(op, Dedup)]
        assert len(dedups) == 1

    def test_no_dedup_after_duplicate_free_scan(self):
        fused = fuse(lower_query(parse_obj(
            "count o iterate(Kp(T), id) ! P")))
        # identity map over a set scan cannot introduce duplicates.
        assert not [op for op in fused.pipeline.ops
                    if isinstance(op, Dedup)]

    def test_adjacent_maps_merge(self):
        fused = fuse(lower_query(parse_obj(
            "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P")))
        maps = [op for op in fused.pipeline.ops if isinstance(op, Map)]
        assert len(maps) == 1
        assert maps[0].fn == parse_obj("city o addr ! P").args[0]

    def test_fusion_preserves_results(self, tiny_db):
        for text in (
            "iterate(Kp(T), city) o iterate(gt @ <age, Kf(25)>, addr) ! P",
            "count o flat o iterate(Kp(T), grgs) ! P",
            "ssum o iterate(Kp(T), age) o to_set o listify(age) ! P",
        ):
            query = parse_obj(text)
            expected = eval_obj(query, tiny_db)
            unfused = compile_executable(query, fused=False).run(tiny_db)
            fused_result = compile_executable(query).run(tiny_db)
            assert _identical(unfused, expected)
            assert _identical(fused_result, expected)


class TestEmission:
    QUERIES = (
        "iterate(gt @ <age, Kf(25)>, city o addr) ! P",
        "count o iterate(Kp(T), city o addr) ! P",
        "ssum o iterate(Kp(T), age) ! P",
        "flat o iterate(Kp(T), grgs) ! P",
        "unnest(city o addr, grgs) ! P",
        "bag_sum o bag_iterate(Kp(T), age) o tobag ! P",
        "listify(age) o iterate(Kp(T), id) ! P",
        "to_set o list_iterate(Cp(lt, 40) @ age, id) o listify(age) ! P",
        "join(in @ (id >< cars), pi1) ! [V, P]",
        "nest(city o addr, age) ! [P, iterate(Kp(T), city o addr) ! P]",
        "iter(gt @ <age o pi2, pi1>, age o pi2) ! [30, P]",
        "nest(pi1, pi2) o (unnest(pi1, pi2) >< id)"
        " o <join(in @ (id >< cars), (id >< grgs)), pi1> ! [V, P]",
    )

    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_direct_evaluation(self, tiny_db, text):
        query = parse_obj(text)
        expected = eval_obj(query, tiny_db)
        assert _identical(compile_executable(query).run(tiny_db), expected)

    def test_eval_errors_surface_at_run_time(self, tiny_db):
        plan = compile_executable(parse_obj("flat ! P"))
        with pytest.raises(EvalError):
            plan.run(tiny_db)

    def test_explain_renders_pipeline(self):
        plan = compile_executable(
            parse_obj("count o iterate(Kp(T), age) ! P"))
        text = plan.explain()
        assert "Sink[count]" in text
        assert "Scan[P : set]" in text

    def test_plan_reuse_is_stateless(self, tiny_db):
        plan = compile_executable(parse_obj("iterate(Kp(T), age) ! P"))
        first = plan.run(tiny_db)
        assert _identical(plan.run(tiny_db), first)


class TestRetargeting:
    def test_one_executable_two_databases(self, db_pair):
        small, large = db_pair
        query = parse_obj("iterate(gt @ <age, Kf(25)>, city o addr) ! P")
        plan = compile_executable(query)
        assert _identical(plan.run(small), eval_obj(query, small))
        assert _identical(plan.run(large), eval_obj(query, large))

    def test_missing_database_raises_at_run_time(self, tiny_db):
        plan = compile_executable(parse_obj("count ! P"))
        with pytest.raises(EvalError, match="database"):
            plan.run()
        assert plan.run(tiny_db) == len(tiny_db.collection("P"))


class TestColumnar:
    def test_attr_chain_recognition(self):
        assert attr_chain(parse_obj("city o addr ! P").args[0]) == (
            "addr", "city")
        assert attr_chain(parse_obj("age ! P").args[0]) == ("age",)
        assert attr_chain(parse_obj("pi1 o age ! P").args[0]) is None

    def test_columns_are_cached_per_database(self, tiny_db):
        clear_cache()
        first = column(tiny_db, "P", ("age",))
        second = column(tiny_db, "P", ("age",))
        assert first is second
        databases, columns = cache_stats()
        assert databases == 1 and columns >= 1
        clear_cache()

    def test_scan_prefix_consumption(self):
        lowered = fuse(lower_query(parse_obj(
            "iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P")))
        fast = columnar_scan(lowered.pipeline.source, lowered.pipeline.ops)
        assert fast is not None
        _, remaining = fast
        assert not any(isinstance(op, (Map, Filter)) for op in remaining)

    @pytest.mark.parametrize("text", TestEmission.QUERIES)
    def test_columnar_matches_direct_evaluation(self, tiny_db, text):
        query = parse_obj(text)
        expected = eval_obj(query, tiny_db)
        got = compile_executable(query, columnar=True).run(tiny_db)
        assert _identical(got, expected)

    def test_columnar_retargets(self, db_pair):
        small, large = db_pair
        query = parse_obj("iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P")
        plan = compile_executable(query, columnar=True)
        assert _identical(plan.run(small), eval_obj(query, small))
        assert _identical(plan.run(large), eval_obj(query, large))


class TestOptimizerBackends:
    def test_execute_backends_agree(self, tiny_db):
        from repro.optimizer.optimizer import Optimizer
        optimizer = Optimizer()
        query = parse_obj(
            "iterate(Kp(T), <id, iter(gt @ <age o pi2, age o pi1>, pi2)"
            " o <id, Kf(P)>>) ! P")
        optimized = optimizer.optimize(query, tiny_db)
        expected = eval_obj(query, tiny_db)
        assert _identical(optimized.execute(tiny_db), expected)
        assert _identical(optimized.execute(tiny_db, backend="fused"),
                          expected)
        assert _identical(optimized.execute(tiny_db, backend="columnar"),
                          expected)
        with pytest.raises(ValueError, match="backend"):
            optimized.execute(tiny_db, backend="warp")

    def test_executable_is_cached_on_the_result(self, tiny_db):
        from repro.optimizer.optimizer import Optimizer
        optimizer = Optimizer()
        optimized = optimizer.optimize(
            parse_obj("iterate(Kp(T), age) ! P"), tiny_db)
        assert optimized.executable() is optimized.executable()
        # ... and a plan-cache hit carries the compiled pipeline along.
        again = optimizer.optimize(
            parse_obj("iterate(Kp(T), age) ! P"), tiny_db)
        assert again is optimized

    def test_optimizer_execute_entry_point(self, tiny_db):
        from repro.optimizer.optimizer import Optimizer
        query = parse_obj("count o iterate(Kp(T), id) ! P")
        assert Optimizer().execute(query, tiny_db) == eval_obj(
            query, tiny_db)


class TestWireCodec:
    def test_fused_plan_round_trip(self, tiny_db):
        query = parse_obj("iterate(Kp(T), city o addr) ! P")
        plan = FusedPlan(query, columnar=True)
        payload = encode_plan(plan)
        assert payload[0] == "fused"
        decoded = decode_plan(payload)
        assert isinstance(decoded, FusedPlan)
        assert decoded.query == query
        assert decoded.columnar is True
        assert _identical(decoded.execute(tiny_db),
                          eval_obj(query, tiny_db))

    def test_payload_is_picklable(self):
        import pickle
        payload = encode_plan(FusedPlan(
            parse_obj("count o iterate(Kp(T), id) ! P")))
        assert pickle.loads(pickle.dumps(payload)) == payload


class TestCliRun:
    def test_run_reports_measured_and_estimated(self, capsys):
        code = main(["run", "--kola", "iterate(Kp(T), city o addr) ! P",
                     "--repeat", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "est. cost:" in out
        assert "measured :" in out
        assert "result   :" in out

    def test_run_oql_with_explain(self, capsys):
        code = main(["run", "select p.age from p in P where p.age > 25",
                     "--backend", "columnar", "--repeat", "1",
                     "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sink[set]" in out

    def test_run_plan_backend(self, capsys):
        code = main(["run", "--kola", "count o iterate(Kp(T), id) ! P",
                     "--backend", "plan", "--repeat", "1", "--explain"])
        assert code == 0
        assert "Interpret" in capsys.readouterr().out


class TestRender:
    def test_render_covers_every_node(self):
        lowered = lower_query(parse_obj(
            "nest(pi1, pi2) o (unnest(pi1, pi2) >< id)"
            " o <join(eq @ (pi1 >< pi1), (id >< grgs)), pi1> ! [V, P]"))
        text = render(lowered)
        assert "NestGroup" in text and "JoinProbe" in text
        lowered = lower_query(parse_obj(
            "listify(age) o iterate(Cp(lt, 40) @ age, id)"
            " o to_set o list_flat o list_iterate(Kp(T), id)"
            " o listify(age) ! P"))
        text = render(lowered)
        assert "Sort" in text and "Flatten[list]" in text
        lowered = lower_query(parse_obj(
            "iter(Kp(T), pi2) ! [1, unnest(age, grgs) ! P]"))
        assert "WrapEnv" in render(lowered)
