"""Tests for hash indexes, index-scan plans, and optimizer integration."""

import pytest

from repro.core import constructors as C
from repro.core.eval import eval_obj
from repro.core.parser import parse_fun, parse_obj
from repro.optimizer.indexes import (HashIndex, IndexCatalog,
                                     IndexScanPlan, recognize_index_scan)
from repro.optimizer.optimizer import Optimizer


@pytest.fixture()
def catalog(db):
    catalog = IndexCatalog()
    catalog.build(db, "P", C.prim("age"))
    catalog.build(db, "P", parse_fun("city o addr"))
    return catalog


class TestHashIndex:
    def test_lookup(self, db, catalog):
        index = catalog.find("P", C.prim("age"))
        some_person = next(iter(db.collection("P")))
        bucket = index.lookup(some_person.get("age"))
        assert some_person in bucket
        assert all(p.get("age") == some_person.get("age") for p in bucket)

    def test_missing_key_empty(self, db, catalog):
        index = catalog.find("P", C.prim("age"))
        assert index.lookup(-999) == frozenset()

    def test_path_key(self, db, catalog):
        index = catalog.find("P", parse_fun("city o addr"))
        some_person = next(iter(db.collection("P")))
        city = some_person.get("addr").get("city")
        assert some_person in index.lookup(city)

    def test_catalog_miss(self, catalog):
        assert catalog.find("V", C.prim("age")) is None
        assert catalog.find("P", C.prim("name")) is None


class TestRecognition:
    def test_translator_shape(self, catalog):
        query = parse_obj("iterate(eq @ <age, Kf(30)>, id) ! P")
        plan = recognize_index_scan(query, catalog)
        assert isinstance(plan, IndexScanPlan)
        assert "IndexScan" in plan.explain()

    def test_mirrored_shape(self, catalog):
        query = parse_obj("iterate(eq @ <Kf(30), age>, id) ! P")
        assert recognize_index_scan(query, catalog) is not None

    def test_rule13_shape(self, catalog):
        query = parse_obj("iterate(Cp(eq, 30) @ age, name) ! P")
        plan = recognize_index_scan(query, catalog)
        assert plan is not None
        assert plan.map_fn == C.prim("name")

    def test_path_key_shape(self, catalog):
        query = parse_obj(
            'iterate(eq @ <city o addr, Kf("Montreal")>, id) ! P')
        assert recognize_index_scan(query, catalog) is not None

    def test_unindexed_key_rejected(self, catalog):
        query = parse_obj("iterate(eq @ <name, Kf(\"Bob\")>, id) ! P")
        assert recognize_index_scan(query, catalog) is None

    def test_non_equality_rejected(self, catalog):
        query = parse_obj("iterate(gt @ <age, Kf(30)>, id) ! P")
        assert recognize_index_scan(query, catalog) is None

    def test_non_collection_rejected(self, catalog):
        query = parse_obj("iterate(eq @ <age, Kf(30)>, id) ! (flat ! S)")
        assert recognize_index_scan(query, catalog) is None


class TestExecution:
    def test_agrees_with_interpreter(self, db, catalog):
        query = parse_obj("iterate(eq @ <age, Kf(30)>, id) ! P")
        plan = recognize_index_scan(query, catalog)
        assert plan.execute(db) == eval_obj(query, db)

    def test_map_applied(self, db, catalog):
        query = parse_obj("iterate(Cp(eq, 30) @ age, name) ! P")
        plan = recognize_index_scan(query, catalog)
        assert plan.execute(db) == eval_obj(query, db)

    def test_cheaper_than_scan(self, db, catalog):
        from repro.optimizer.physical import InterpretPlan
        query = parse_obj("iterate(eq @ <age, Kf(30)>, id) ! P")
        plan = recognize_index_scan(query, catalog)
        scan = InterpretPlan(query)
        assert plan.cost_estimate(db) < scan.cost_estimate(db)


class TestOptimizerIntegration:
    def test_oql_selection_uses_index(self, rulebase, db, catalog):
        optimizer = Optimizer(rulebase, catalog=catalog)
        optimized = optimizer.optimize(
            "select p from p in P where p.age == 30", db)
        assert isinstance(optimized.plan, IndexScanPlan)
        assert optimized.execute(db) == eval_obj(
            parse_obj("iterate(eq @ <age, Kf(30)>, id) ! P"), db)

    def test_without_catalog_interprets(self, rulebase, db):
        optimizer = Optimizer(rulebase)
        optimized = optimizer.optimize(
            "select p from p in P where p.age == 30", db)
        assert not isinstance(optimized.plan, IndexScanPlan)
