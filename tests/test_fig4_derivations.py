"""Integration tests: Figure 4's derivations T1K and T2K, replayed by the
engine and checked against the paper's printed forms."""

import warnings

import pytest

from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.pretty import pretty
from repro.coko.stdblocks import block_t1k, block_t2k
from repro.rewrite.engine import MaxStepsExceededWarning
from repro.rewrite.trace import Derivation


class TestT1K:
    def test_final_form(self, rulebase, queries):
        result = block_t1k().transform(queries.t1k_source, rulebase)
        assert result == queries.t1k_target

    def test_step_order_matches_paper(self, rulebase, queries):
        derivation = Derivation("T1K")
        block_t1k().transform(queries.t1k_source, rulebase,
                              derivation=derivation)
        assert derivation.rules_used() == ["[11]", "[6]", "[5]"]

    def test_intermediate_forms(self, rulebase, queries):
        derivation = Derivation()
        block_t1k().transform(queries.t1k_source, rulebase,
                              derivation=derivation)
        forms = [pretty(form) for form in derivation.forms()]
        assert forms == [
            "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
            "iterate(Kp(T) & Kp(T) @ addr, city o addr) ! P",
            "iterate(Kp(T) & Kp(T), city o addr) ! P",
            "iterate(Kp(T), city o addr) ! P",
        ]

    def test_meaning_preserved(self, rulebase, queries, db_pair):
        derivation = Derivation()
        block_t1k().transform(queries.t1k_source, rulebase,
                              derivation=derivation)
        assert derivation.verify(db_pair)

    def test_reaches_fixpoint(self, rulebase, queries):
        """Every normalization inside the block runs to a true fixpoint;
        a silent max_steps cap would surface here as an error."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", MaxStepsExceededWarning)
            result = block_t1k().transform(queries.t1k_source, rulebase)
        assert result == queries.t1k_target


class TestT2K:
    def test_final_form(self, rulebase, queries):
        result = block_t2k().transform(queries.t2k_source, rulebase)
        assert result == queries.t2k_target

    def test_uses_rule12_reversed(self, rulebase, queries):
        derivation = Derivation()
        block_t2k().transform(queries.t2k_source, rulebase,
                              derivation=derivation)
        labels = derivation.rules_used()
        assert labels[0] == "[11]"
        assert labels[-1] == "[12^-1]"
        assert "[13]" in labels
        assert "[7]" in labels

    def test_meaning_preserved(self, rulebase, queries, db_pair):
        derivation = Derivation()
        block_t2k().transform(queries.t2k_source, rulebase,
                              derivation=derivation)
        assert derivation.verify(db_pair)

    def test_reaches_fixpoint(self, rulebase, queries):
        with warnings.catch_warnings():
            warnings.simplefilter("error", MaxStepsExceededWarning)
            result = block_t2k().transform(queries.t2k_source, rulebase)
        assert result == queries.t2k_target

    def test_result_selects_over_25(self, rulebase, queries, tiny_db):
        """The end query means: ages of people older than 25."""
        result = block_t2k().transform(queries.t2k_source, rulebase)
        expected = frozenset(
            person.get("age") for person in tiny_db.collection("P")
            if person.get("age") > 25)
        assert eval_obj(result, tiny_db) == expected


class TestFigure1Correspondence:
    """The AQUA transformations of Figure 1 and the KOLA derivations of
    Figure 4 compute the same things."""

    def test_t1_translations_line_up(self, queries):
        from repro.translate.aqua_to_kola import translate_query
        assert translate_query(queries.t1_source_aqua) == queries.t1k_source
        assert translate_query(queries.t1_target_aqua) == queries.t1k_target

    def test_t2_source_translation(self, queries):
        from repro.translate.aqua_to_kola import translate_query
        assert translate_query(queries.t2_source_aqua) == queries.t2k_source

    def test_t2_targets_equivalent(self, queries, db_pair):
        """The paper's AQUA T2 target (a > 25) and our KOLA T2K target
        (25 < a) are the same query."""
        from repro.aqua.eval import aqua_eval
        for database in db_pair:
            assert (aqua_eval(queries.t2_target_aqua, database)
                    == eval_obj(queries.t2k_target, database))
