"""Properties of ``Engine.successors``: the one-step rewrite frontier.

The saturation driver and the equational prover both consume
``successors`` as "every (rule, position) rewrite, exactly once, in
rule-major order".  These tests pin that contract down — and pin it
down *identically* across all three dispatch tiers (linear scan,
head-indexed, compiled discrimination tree), so a dispatch optimization
can never silently drop, duplicate, or reorder a rewrite.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rewrite.engine import Engine
from repro.rewrite.pattern import canon
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries


def _query_pool():
    queries = paper_queries()
    pool = [queries.kg1, queries.kg2, queries.k3, queries.k4,
            queries.t1k_source, queries.t2k_source]
    for depth in (1, 2):
        pool.append(translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth))))
    return [canon(term) for term in pool]


_QUERIES = _query_pool()

#: The three dispatch tiers, least to most optimized.  Fresh engines
#: per call would also work; the tiers hold no per-term state beyond
#: the normal-form cache, which ``successors`` does not consult.
_TIERS = {
    "linear": Engine(indexed=False, incremental=False),
    "indexed": Engine(compiled=False),
    "compiled": Engine(),
}


def _rule_pool(rulebase):
    pool = (rulebase.group("simplify") + rulebase.group("fig8")
            + rulebase.group("fig4") + rulebase.group("fig5"))
    unique = {one_rule.name: one_rule for one_rule in pool}
    return list(unique.values())


def _signature(results):
    """The comparable footprint of a successor list: rule firings in
    order, with their positions and produced terms."""
    return [(res.rule.name, res.path, res.term) for res in results]


@given(seed=st.integers(0, 50_000))
@settings(max_examples=30, deadline=None)
def test_each_rule_position_rewrite_exactly_once(seed, rulebase):
    """No (rule, position) pair may appear twice: ``successors`` is a
    set of distinct single-step rewrites, not a multiset."""
    rng = random.Random(seed)
    term = rng.choice(_QUERIES)
    rules = rng.sample(_rule_pool(rulebase),
                       k=rng.randint(1, 20))
    results = _TIERS["compiled"].successors(term, rules)
    keys = [(res.rule.name, res.path) for res in results]
    assert len(keys) == len(set(keys))


@given(seed=st.integers(0, 50_000))
@settings(max_examples=30, deadline=None)
def test_rule_major_order(seed, rulebase):
    """Results arrive grouped by rule, in the pool's priority order:
    every rewrite of rule *i* precedes every rewrite of rule *j > i*."""
    rng = random.Random(seed)
    term = rng.choice(_QUERIES)
    rules = rng.sample(_rule_pool(rulebase), k=rng.randint(2, 20))
    position = {one_rule.name: i for i, one_rule in enumerate(rules)}
    for tier in _TIERS.values():
        results = tier.successors(term, rules)
        order = [position[res.rule.name] for res in results]
        assert order == sorted(order), \
            f"not rule-major: {[res.rule.name for res in results]}"


@given(seed=st.integers(0, 50_000))
@settings(max_examples=30, deadline=None)
def test_dispatch_tiers_agree(seed, rulebase):
    """Linear scan, head-indexed and compiled dispatch must return the
    *same* rewrites — same rules, same positions, same produced terms,
    same order."""
    rng = random.Random(seed)
    term = rng.choice(_QUERIES)
    rules = rng.sample(_rule_pool(rulebase), k=rng.randint(1, 20))
    footprints = {name: _signature(tier.successors(term, rules))
                  for name, tier in _TIERS.items()}
    assert footprints["linear"] == footprints["indexed"]
    assert footprints["indexed"] == footprints["compiled"]


def test_successors_results_are_canonical(rulebase):
    """Every produced term is already in canonical form — callers feed
    them straight back into matching without re-canonicalizing."""
    for term in _QUERIES[:3]:
        for res in _TIERS["compiled"].successors(
                term, rulebase.group_compiled("saturate")):
            assert res.term == canon(res.term)


def test_successors_of_whole_group_nonempty(rulebase):
    """Sanity: the saturate pool rewrites the garage query somewhere."""
    queries = paper_queries()
    results = _TIERS["compiled"].successors(
        canon(queries.kg1), rulebase.group_compiled("saturate"))
    assert results
