"""Overlapping rules under compiled dispatch: list order stays
priority order.

:mod:`repro.rewrite.overlap` surfaces positions where two rules apply
to the same term (critical pairs); at such a *peak* the engine's
contract is that the rule earlier in the list fires, whatever the
dispatch tier.  The discrimination tree stores all patterns in one
trie — including patterns sharing a ``compose`` head with different
arities, which reach the same subject by different mechanisms (direct
chain edges vs chain windows) — so these tests pin the priority
contract at exactly the places it could silently break.
"""

from __future__ import annotations

from repro.core import constructors as C
from repro.core.terms import Term
from repro.rewrite.discrimination import compiled_ruleset
from repro.rewrite.engine import Engine
from repro.rewrite.overlap import find_overlaps
from repro.rewrite.pattern import canon
from repro.rewrite.rule import rule
from repro.rewrite.ruleindex import rule_index


def _lit(value) -> Term:
    return Term("lit", (), value)


def _fire(term, rules):
    """rewrite_once under all three dispatch tiers; assert they agree
    on rule and result, then return (rule name, result term)."""
    outcomes = []
    for engine in (Engine(),                                 # compiled
                   Engine(compiled=False),                   # indexed
                   Engine(indexed=False, incremental=False)):  # linear
        result = engine.rewrite_once(term, list(rules))
        outcomes.append(None if result is None
                        else (result.rule.name, result.term, result.path))
    assert outcomes[0] == outcomes[1] == outcomes[2]
    return outcomes[0]


def test_same_arity_compose_overlap_keeps_list_order(rulebase):
    """r1 ($f o id) and r8 (Kf($k) o $f) both match ``Kf(k) o id``
    directly; whichever is listed first fires — under every tier."""
    r1, r8 = rulebase.get("r1"), rulebase.get("r8")
    peak = canon(C.compose(C.const_f(_lit("k")), C.id_()))

    first = _fire(peak, [r1, r8])
    assert first is not None and first[0] == "r1"
    second = _fire(peak, [r8, r1])
    assert second is not None and second[0] == "r8"
    # both fire *at the root*, so this is a genuine priority race
    assert first[2] == second[2] == ()


def test_different_arity_shared_compose_head_keeps_list_order():
    """Two rules share the ``compose`` head with different arities: the
    3-factor rule matches a 3-chain directly, the 2-factor rule only
    via a chain window.  Rule-major order must still decide."""
    two = rule("ov-two", "Kf($k) o $f", "Kf($k)")
    three = rule("ov-three", "Kf($k) o id o $f", "$f")
    subject = canon(C.compose_chain(C.const_f(_lit("k")), C.id_(),
                                    C.prim("payload")))

    listed_first = _fire(subject, [two, three])
    assert listed_first is not None and listed_first[0] == "ov-two"
    swapped = _fire(subject, [three, two])
    assert swapped is not None and swapped[0] == "ov-three"


def test_window_vs_direct_same_rule_order():
    """A 2-factor rule listed before a direct 3-factor match still wins
    via its window — the compiled window phase must not defer to a
    later rule's direct hit."""
    windowed = rule("ov-win", "$f o id", "$f")
    direct = rule("ov-direct", "Kf($k) o id o $g", "Kf($k) o $g")
    subject = canon(C.compose_chain(C.const_f(_lit("v")), C.id_(),
                                    C.prim("tail")))

    outcome = _fire(subject, [windowed, direct])
    assert outcome is not None and outcome[0] == "ov-win"
    outcome = _fire(subject, [direct, windowed])
    assert outcome is not None and outcome[0] == "ov-direct"


def test_trie_hits_sorted_by_rule_position():
    """Retrieval returns candidates in ascending list position — the
    invariant the engine's priority loop rests on."""
    pool = [rule("ov-a", "$f o id", "$f"),
            rule("ov-b", "Kf($k) o $f", "Kf($k)"),
            rule("ov-c", "$f", "$f o id"),
            rule("ov-d", "Kf($k) o id", "Kf($k)")]
    compiled = compiled_ruleset(rule_index(tuple(pool)))
    subject = canon(C.compose(C.const_f(_lit("v")), C.id_()))
    hits = compiled.retrieve(subject)
    positions = [position for position, _, _ in hits]
    assert positions == sorted(positions)
    # every rule matches this subject: 0,1,3 directly, 2 as wildcard
    assert positions == [0, 1, 2, 3]


def test_pool_overlap_peaks_fire_identically(rulebase):
    """For every overlap among the Figure 4/5 rules, the peak term
    rewrites identically (same rule, same result) under compiled and
    uncompiled dispatch, in both list orders."""
    rules = rulebase.group("fig4") + rulebase.group("fig5")
    peaks = 0
    for outer in rules:
        for inner in rules:
            for overlap in find_overlaps(outer, inner):
                if overlap.peak.metavars():
                    continue  # peaks with free metavariables are not
                    # engine subjects
                _fire(overlap.peak, [outer, inner])
                _fire(overlap.peak, [inner, outer])
                peaks += 1
    assert peaks > 0
