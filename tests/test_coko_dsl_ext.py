"""Tests for the COKO DSL extensions: traversal modes and conditionals."""

import pytest

from repro.coko.parser import parse_coko
from repro.coko.strategy import Context, Exhaust, IfFires, Once
from repro.core.parser import parse_fun, parse_obj
from repro.core.pretty import pretty
from repro.rewrite.engine import Engine


class TestTraversalModes:
    def test_bottomup_exhaust(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        term = parse_fun("iterate(Kp(T), id o (id o age))")
        result = Exhaust("r2", traversal="bottomup").run(term, ctx)
        assert result == parse_fun("iterate(Kp(T), age)")

    def test_dsl_bu_mode(self, rulebase):
        [block] = parse_coko("""
            TRANSFORMATION clean-bu
            USES r2
            BEGIN exhaust bu { r2 } END
        """)
        result = block.transform(parse_fun("id o id o age"), rulebase)
        assert result == parse_fun("age")

    def test_dsl_td_mode_explicit(self, rulebase):
        [block] = parse_coko("""
            TRANSFORMATION clean-td
            USES r1
            BEGIN exhaust td { r1 } END
        """)
        result = block.transform(parse_fun("age o id"), rulebase)
        assert result == parse_fun("age")


class TestIfFires:
    def test_then_branch_on_fire(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        strategy = IfFires("r11", Exhaust("group:cleanup"),
                           Once("r18"))
        term = parse_obj(
            "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P")
        result = strategy.run(term, ctx)
        assert result == parse_obj("iterate(Kp(T), city o addr) ! P")

    def test_else_branch_on_no_fire(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        strategy = IfFires("r11", Exhaust("group:cleanup"),
                           Exhaust("r18"))
        term = parse_fun("iterate(Kp(T), id)")
        result = strategy.run(term, ctx)
        assert result == parse_fun("id")  # else ran rule 18

    def test_no_else_keeps_term(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        strategy = IfFires("r11", Exhaust("group:cleanup"))
        term = parse_fun("age")
        assert strategy.run(term, ctx) == term

    def test_dsl_if_then_else(self, rulebase):
        [block] = parse_coko("""
            TRANSFORMATION fuse-or-strip
            USES r11, r18, group:cleanup
            BEGIN
              if r11 then { exhaust { group:cleanup } }
              else { exhaust { r18 } }
            END
        """)
        fused = block.transform(
            parse_obj("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"),
            rulebase)
        assert fused == parse_obj("iterate(Kp(T), city o addr) ! P")
        stripped = block.transform(parse_fun("iterate(Kp(T), id)"),
                                   rulebase)
        assert stripped == parse_fun("id")

    def test_dsl_if_records_derivation(self, rulebase):
        from repro.rewrite.trace import Derivation
        [block] = parse_coko("""
            TRANSFORMATION demo
            USES r11, group:cleanup
            BEGIN if r11 then { exhaust { group:cleanup } } END
        """)
        derivation = Derivation()
        block.transform(
            parse_obj("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"),
            rulebase, derivation=derivation)
        assert derivation.rules_used()[0] == "[11]"
