"""Derivation fuzzing: random sequences of pool rules applied to random
queries must preserve semantics at every step.

This is the system-level closure of the verification stack: individual
rules are checked in isolation by the Larch substitute, but an optimizer
*composes* them — at arbitrary positions, interleaved with chain
re-canonicalization.  The fuzzer drives exactly that composition and
re-evaluates after every step.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eval import eval_obj
from repro.core.eval import test_pred as check_pred
from repro.fuzz.strategies import kola_queries
from repro.rewrite.engine import Engine
from repro.schema.generator import tiny_database
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family
from repro.workloads.queries import paper_queries

_DB = tiny_database(seed=17)


def _query_pool():
    queries = paper_queries()
    pool = [queries.kg1, queries.k3, queries.k4, queries.t1k_source,
            queries.t2k_source]
    for depth in (1, 2, 3):
        pool.append(translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth))))
        pool.append(translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth, applicable=False))))
    return pool

_QUERIES = _query_pool()

#: Query source: the type-directed generator (seed-mapped, so hypothesis
#: shrinks the *seed*) is the primary stream; the fixed paper pool is
#: mixed in to keep the hidden-join shapes — which target fig4/fig5
#: specifically — in rotation.
_queries = kola_queries() | st.sampled_from(_QUERIES)


def _direct(query):
    """Evaluate either root form (``f ! x`` or ``p ? x``)."""
    if query.op == "test":
        return check_pred(query.args[0], eval_obj(query.args[1], _DB), _DB)
    return eval_obj(query, _DB)


@given(query=_queries, seed=st.integers(0, 20_000))
@settings(max_examples=40, deadline=None)
def test_random_rule_sequences_preserve_meaning(query, seed,
                                                rulebase_session):
    """Apply up to 12 randomly-chosen pool rules (in random order, at
    whatever position the engine finds); results must stay equal to the
    original query's."""
    rng = random.Random(seed)
    engine = Engine()
    reference = _direct(query)

    # sample from the terminating, unconditioned part of the pool, plus
    # the hidden-join rules (the composition the optimizer performs)
    candidates = (rulebase_session.group("simplify")
                  + rulebase_session.group("fig8")
                  + rulebase_session.group("fig4")
                  + rulebase_session.group("fig5"))
    current = query
    for _ in range(12):
        rule = rng.choice(candidates)
        result = engine.rewrite_once(current, [rule])
        if result is None:
            continue
        current = result.term
        assert _direct(current) == reference, (
            f"rule {rule.name} broke the query")


@given(query=_queries, seed=st.integers(0, 20_000))
@settings(max_examples=20, deadline=None)
def test_random_reversed_rule_sequences_preserve_meaning(
        query, seed, rulebase_session):
    """The same property with right-to-left readings mixed in —
    bidirectional rules must be safe in both directions under
    composition too."""
    rng = random.Random(seed)
    engine = Engine()
    reference = _direct(query)

    forwards = rulebase_session.group("fig4") + rulebase_session.group(
        "companions")
    candidates = []
    for rule in forwards:
        candidates.append(rule)
        if (rule.bidirectional and rule.reverse_type_safe
                and not (rule.lhs.metavars() - rule.rhs.metavars())):
            candidates.append(rule.reversed())
    current = query
    for _ in range(8):
        rule = rng.choice(candidates)
        result = engine.rewrite_once(current, [rule])
        if result is None:
            continue
        current = result.term
        assert _direct(current) == reference, rule.name


@pytest.fixture(scope="session")
def rulebase_session():
    from repro.rules.registry import standard_rulebase
    return standard_rulebase()
