"""Tests for the workload generators."""

import pytest

from repro.aqua.analysis import free_vars
from repro.aqua.eval import aqua_eval
from repro.aqua.terms import App, Flatten, Sel
from repro.translate.aqua_to_kola import translate_query
from repro.translate.metrics import max_env_depth
from repro.workloads.hidden_join import (HiddenJoinSpec, garage_shape,
                                         hidden_join_family)
from repro.workloads.queries import paper_queries


class TestHiddenJoinFamily:
    def test_depth_one_shape(self):
        query = hidden_join_family(HiddenJoinSpec(depth=1))
        assert isinstance(query, App)
        assert isinstance(query.fn.body.right, Sel)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            hidden_join_family(HiddenJoinSpec(depth=0))

    def test_depths_alternate_levels(self):
        query = hidden_join_family(HiddenJoinSpec(depth=2))
        assert isinstance(query.fn.body.right, Flatten)
        query3 = hidden_join_family(HiddenJoinSpec(depth=3))
        assert isinstance(query3.fn.body.right, Sel)

    def test_queries_are_closed(self):
        for depth in range(1, 6):
            query = hidden_join_family(HiddenJoinSpec(depth=depth))
            assert free_vars(query) == frozenset()

    def test_inner_predicate_correlates(self):
        """The hidden join references the outer variable inside the
        nested query — that is what makes it 'hidden'."""
        query = hidden_join_family(HiddenJoinSpec(depth=1))
        inner = query.fn.body.right
        assert "a" in free_vars(inner)

    def test_env_depth_is_two(self):
        """Figure 7 queries keep at most two variables in scope
        (m = 2) regardless of n — the paper's 'm is typically small'."""
        for depth in range(1, 6):
            query = hidden_join_family(HiddenJoinSpec(depth=depth))
            assert max_env_depth(query) == 2

    def test_inapplicable_variant_bottom_is_derived(self):
        query = hidden_join_family(HiddenJoinSpec(depth=1,
                                                  applicable=False))
        from repro.aqua.terms import Attr, SetRef
        bottoms = [node for node in query.subexprs()
                   if isinstance(node, Attr) and node.name == "child"]
        assert bottoms  # the inner source is a.child, not a named set

    def test_evaluable_at_all_depths(self, tiny_db):
        for depth in range(1, 5):
            query = hidden_join_family(HiddenJoinSpec(depth=depth))
            result = aqua_eval(query, tiny_db)
            assert len(result) == len(tiny_db.collection("P"))

    def test_garage_shape_matches_paper(self, queries):
        assert translate_query(garage_shape()) == queries.kg1


class TestPaperQueries:
    def test_construction_is_cached_free(self):
        a, b = paper_queries(), paper_queries()
        assert a.kg1 == b.kg1

    def test_aqua_and_kola_forms_agree(self, queries, tiny_db):
        """Every paired AQUA/KOLA form in the library means the same."""
        from repro.core.eval import eval_obj
        pairs = [
            (queries.garage_aqua, queries.kg1),
            (queries.t1_source_aqua, queries.t1k_source),
            (queries.t2_source_aqua, queries.t2k_source),
            (queries.a3_aqua, queries.k3),
            (queries.a4_aqua, queries.k4),
        ]
        for aqua, kola in pairs:
            assert aqua_eval(aqua, tiny_db) == eval_obj(kola, tiny_db)

    def test_k4_code_moved_equivalent(self, queries, tiny_db):
        from repro.core.eval import eval_obj
        assert (eval_obj(queries.k4, tiny_db)
                == eval_obj(queries.k4_code_moved, tiny_db))
