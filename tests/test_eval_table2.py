"""Conformance tests for Table 2: KOLA query combinator semantics,
plus the paper's Section 3 reductions (the iterate example and the
Garage Query trace)."""

import pytest

from repro.core import constructors as C
from repro.core.errors import EvalError
from repro.core.eval import apply_fn, eval_obj
from repro.core.parser import parse_obj
from repro.core.values import KPair, kset


def pairs(*items):
    return kset(KPair(a, b) for a, b in items)


class TestFlat:
    def test_flat(self):
        # flat ! A = {x | x in B, B in A}
        value = kset([kset([1, 2]), kset([2, 3])])
        assert apply_fn(C.flat(), value) == kset([1, 2, 3])

    def test_flat_empty(self):
        assert apply_fn(C.flat(), kset([])) == kset([])
        assert apply_fn(C.flat(), kset([kset([])])) == kset([])

    def test_flat_non_set_element(self):
        with pytest.raises(EvalError):
            apply_fn(C.flat(), kset([1]))


class TestIterate:
    def test_iterate(self):
        # iterate(p, f) ! A = {f!x | x in A, p?x}
        term = C.iterate(C.curry_p(C.lt(), C.lit(2)),
                         C.pair(C.id_(), C.id_()))
        result = apply_fn(term, kset([1, 2, 3, 4]))
        assert result == pairs((3, 3), (4, 4))

    def test_iterate_captures_app(self):
        # app(f) == iterate(Kp(T), f)
        term = C.iterate(C.const_p(C.true()), C.const_f(C.lit(9)))
        assert apply_fn(term, kset([1, 2, 3])) == kset([9])

    def test_iterate_captures_sel(self):
        # sel(p) == iterate(p, id)
        term = C.iterate(C.curry_p(C.leq(), C.lit(3)), C.id_())
        assert apply_fn(term, kset([1, 3, 5])) == kset([3, 5])

    def test_iterate_needs_set(self):
        with pytest.raises(EvalError, match="set"):
            apply_fn(C.iterate(C.const_p(C.true()), C.id_()), 3)


class TestIter:
    def test_iter(self):
        # iter(p, f) ! [x, B] = {f![x,y] | y in B, p?[x,y]}
        term = C.iter_(C.lt(), C.pi2())
        value = KPair(2, kset([1, 2, 3, 4]))
        assert apply_fn(term, value) == kset([3, 4])

    def test_iter_environment_visible(self):
        # the environment (first component) is passed to the function
        term = C.iter_(C.const_p(C.true()), C.pi1())
        value = KPair("env", kset([1, 2]))
        assert apply_fn(term, value) == kset(["env"])

    def test_iter_needs_pair(self):
        with pytest.raises(EvalError, match="pair"):
            apply_fn(C.iter_(C.const_p(C.true()), C.id_()), kset([1]))


class TestJoin:
    def test_join(self):
        # join(p, f) ! [A, B] = {f![x,y] | x in A, y in B, p?[x,y]}
        term = C.join(C.eq(), C.pi1())
        value = KPair(kset([1, 2, 3]), kset([2, 3, 4]))
        assert apply_fn(term, value) == kset([2, 3])

    def test_cartesian_product(self):
        term = C.join(C.const_p(C.true()), C.id_())
        value = KPair(kset([1, 2]), kset(["a"]))
        assert apply_fn(term, value) == pairs((1, "a"), (2, "a"))


class TestNest:
    def test_nest_groups(self):
        # nest(f, g) ! [A, B] = {[y, {g!x | x in A, f!x = y}] | y in B}
        source = pairs((1, "a"), (1, "b"), (2, "c"))
        keys = kset([1, 2])
        term = C.nest(C.pi1(), C.pi2())
        result = apply_fn(term, KPair(source, keys))
        assert result == kset([KPair(1, kset(["a", "b"])),
                               KPair(2, kset(["c"]))])

    def test_nest_null_free(self):
        """The paper's NULL-avoiding design: keys with no partners get
        the empty set, and every element of B is represented."""
        source = pairs((1, "a"))
        keys = kset([1, 2, 3])
        result = apply_fn(C.nest(C.pi1(), C.pi2()), KPair(source, keys))
        assert KPair(2, kset([])) in result
        assert KPair(3, kset([])) in result
        assert len(result) == len(keys)

    def test_nest_cardinality_preservation(self):
        """'The reader can verify ... that every element of A is
        represented in the result' — the nest-of-join identity from
        Section 3."""
        a = kset([1, 2, 3, 4])
        b = kset([10])
        joined = apply_fn(C.join(C.const_p(C.false()), C.id_()),
                          KPair(a, b))
        result = apply_fn(C.nest(C.pi1(), C.pi2()), KPair(joined, a))
        assert {pair.fst for pair in result} == set(a)


class TestUnnest:
    def test_unnest(self):
        # unnest(f, g) ! A = {[f!x, y] | x in A, y in g!x}
        source = kset([KPair(1, kset(["a", "b"])), KPair(2, kset([]))])
        term = C.unnest(C.pi1(), C.pi2())
        assert apply_fn(term, source) == pairs((1, "a"), (1, "b"))

    def test_unnest_then_nest_loses_empties(self):
        """unnest drops empty groups; nest restores them relative to the
        key set — the asymmetry that motivates nest's second argument."""
        source = kset([KPair(1, kset(["a"])), KPair(2, kset([]))])
        keys = kset([1, 2])
        flat_pairs = apply_fn(C.unnest(C.pi1(), C.pi2()), source)
        rebuilt = apply_fn(C.nest(C.pi1(), C.pi2()),
                           KPair(flat_pairs, keys))
        assert rebuilt == source


class TestPaperReductions:
    def test_section3_iterate_reduction(self, tiny_db):
        """iterate(Kp(T), city o addr) ! P = {city!(addr!e) | e in P}."""
        query = parse_obj("iterate(Kp(T), city o addr) ! P")
        expected = kset(
            tiny_db.apply_prim("city", person.get("addr"))
            for person in tiny_db.collection("P"))
        assert eval_obj(query, tiny_db) == expected

    def test_garage_query_reduction(self, tiny_db, queries):
        """KG1's meaning per the Section 3 trace:
        {[v, {z | z in p.grgs, p in Pv}] | v in V} where
        Pv = {p | p in P, v in p.cars}."""
        expected = set()
        for vehicle in tiny_db.collection("V"):
            garages = set()
            for person in tiny_db.collection("P"):
                if vehicle in person.get("cars"):
                    garages.update(person.get("grgs"))
            expected.add(KPair(vehicle, kset(garages)))
        assert eval_obj(queries.kg1, tiny_db) == kset(expected)

    def test_kg1_equals_kg2(self, db_pair, queries):
        """Figure 3: the two Garage Query forms are equivalent."""
        for database in db_pair:
            assert (eval_obj(queries.kg1, database)
                    == eval_obj(queries.kg2, database))
