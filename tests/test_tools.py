"""Tests for developer tools: the rule catalog and the verify-pool CLI."""

import pathlib

import pytest

from repro.cli import main
from repro.tools.rulecatalog import SECTIONS, generate_catalog


class TestRuleCatalog:
    def test_catalog_covers_every_rule(self, rulebase):
        text = generate_catalog(rulebase)
        for one_rule in rulebase.all_rules():
            assert f"`{one_rule.name}`" in text, one_rule.name

    def test_paper_numbers_annotated(self, rulebase):
        text = generate_catalog(rulebase)
        for number in range(1, 25):
            assert f"*(paper rule {number})*" in text

    def test_sections_present(self, rulebase):
        text = generate_catalog(rulebase)
        for _, title in SECTIONS:
            assert f"## {title}" in text

    def test_committed_catalog_in_sync(self, rulebase):
        """docs/rules-catalog.md must be regenerated when rules change."""
        committed = pathlib.Path(__file__).parent.parent / "docs" \
            / "rules-catalog.md"
        assert committed.read_text() == generate_catalog(rulebase)

    def test_main_writes_file(self, tmp_path):
        from repro.tools.rulecatalog import main as catalog_main
        target = tmp_path / "catalog.md"
        assert catalog_main(["--output", str(target)]) == 0
        assert target.read_text().startswith("# Rule catalog")


class TestVerifyPoolCli:
    def test_group_pool(self, capsys):
        code = main(["verify-pool", "--group", "fig5", "--trials", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "r13" in out and "4/4 rules verified" in out

    def test_whole_pool_smoke(self, capsys):
        code = main(["verify-pool", "--trials", "3"])
        assert code == 0
        assert "rules verified" in capsys.readouterr().out
