"""Tests for COKO: strategies, rule blocks, the DSL, and the standard
blocks (Figure 6 code motion, CNF, select pushdown)."""

import pytest

from repro.core.errors import ParseError, RewriteError
from repro.core.eval import eval_obj
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.pretty import pretty
from repro.coko.blocks import RuleBlock, run_blocks
from repro.coko.parser import parse_coko
from repro.coko.stdblocks import (block_cnf, block_code_motion,
                                  block_env_free_select,
                                  block_push_select_past_join,
                                  standard_blocks)
from repro.coko.strategy import Context, Exhaust, Once, Repeat, Seq, Try
from repro.rewrite.engine import Engine
from repro.rewrite.trace import Derivation


class TestStrategies:
    def test_once_optional(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        term = parse_fun("age")
        assert Once("r1").run(term, ctx) == term  # no match, no error

    def test_once_required_raises(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        with pytest.raises(RewriteError, match="did not fire"):
            Once("r1", required=True).run(parse_fun("age"), ctx)

    def test_try_swallows(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        term = parse_fun("age")
        assert Try(Once("r1", required=True)).run(term, ctx) == term

    def test_seq_and_exhaust(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        term = parse_fun("id o age o id")
        strategy = Seq(Exhaust("r1"), Exhaust("r2"))
        assert strategy.run(term, ctx) == parse_fun("age")

    def test_repeat_reaches_fixpoint(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        term = parse_fun("id o id o age")
        result = Repeat(Once("r2")).run(term, ctx)
        assert result == parse_fun("age")

    def test_group_reference(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        rules = ctx.resolve(("group:fig4",))
        assert len(rules) == 12

    def test_rev_reference(self, rulebase, engine):
        ctx = Context(engine, rulebase)
        (rev,) = ctx.resolve(("r12-rev",))
        assert rev.name == "r12-rev"


class TestRuleBlocks:
    def test_block_declares_rules(self, rulebase):
        block = standard_blocks()["T1K"]
        rules = block.rules(rulebase)
        assert {r.name for r in rules} >= {"r11", "r6", "r5"}

    def test_run_blocks_pipeline(self, rulebase, queries):
        from repro.coko.hidden_join import hidden_join_blocks
        result = run_blocks(hidden_join_blocks(), queries.kg1, rulebase)
        assert result == queries.kg2

    def test_derivation_threaded_through(self, rulebase, queries):
        derivation = Derivation()
        block = standard_blocks()["T1K"]
        block.transform(queries.t1k_source, rulebase, derivation=derivation)
        assert len(derivation) == 3


class TestCodeMotionBlock:
    def test_k4_reaches_conditional(self, rulebase, queries):
        result = block_code_motion().transform(queries.k4, rulebase)
        assert result == queries.k4_code_moved

    def test_k4_derivation_rules(self, rulebase, queries):
        derivation = Derivation()
        block_code_motion().transform(queries.k4, rulebase,
                                      derivation=derivation)
        labels = derivation.rules_used()
        for expected in ("[13]", "[7]", "[14]", "[15]", "[16]"):
            assert expected in labels

    def test_k3_blocked_at_rule_15(self, rulebase, queries):
        """K3's predicate projects pi2, so rule 15 cannot fire: no 'con'
        appears.  Structure decides — no environmental analysis."""
        result = block_code_motion().transform(queries.k3, rulebase)
        assert not any(node.op == "cond" for node in result.subterms())
        assert any(node.op == "iter" for node in result.subterms())

    def test_k3_k4_meanings_preserved(self, rulebase, queries, tiny_db):
        for query in (queries.k3, queries.k4):
            result = block_code_motion().transform(query, rulebase)
            assert eval_obj(result, tiny_db) == eval_obj(query, tiny_db)

    def test_k3_alternative_strategy(self, rulebase, queries, tiny_db):
        """Section 4.2: after the shared prefix simplifies the query, an
        alternative strategy (selection pushdown into the inner set)
        applies to K3."""
        mid = block_code_motion().transform(queries.k3, rulebase)
        final = block_env_free_select().transform(mid, rulebase)
        assert not any(node.op == "iter" for node in final.subterms())
        assert eval_obj(final, tiny_db) == eval_obj(queries.k3, tiny_db)


class TestCnfBlock:
    def test_cnf_shape(self, rulebase):
        pred = parse_pred("~((lt @ age) & (gt @ age))")
        result = block_cnf().transform(pred, rulebase)
        # negation pushed to leaves: no ~ over & remains
        for node in result.subterms():
            if node.op == "neg":
                assert node.args[0].op not in ("conj", "disj")

    def test_cnf_distributes(self, rulebase):
        pred = parse_pred("eq | (lt & gt)")
        result = block_cnf().transform(pred, rulebase)
        assert result == parse_pred("(eq | lt) & (eq | gt)")

    def test_cnf_is_equivalent(self, rulebase):
        from repro.larch.gen import TermGenerator
        from repro.core.eval import test_pred as check_pred
        from repro.core.types import INT, pair_t
        pred = parse_pred("~((lt & gt) | ~(leq | geq))")
        result = block_cnf().transform(pred, rulebase)
        generator = TermGenerator(seed=11)
        for _ in range(50):
            value = generator.value(pair_t(INT, INT))
            assert check_pred(pred, value) == check_pred(result, value)


class TestPushSelectBlock:
    def test_select_above_join_absorbed(self, rulebase, tiny_db):
        query = parse_obj(
            "iterate(lt @ <age o pi1, age o pi2>, id)"
            " o join(Kp(T), id) ! [P, P]")
        result = block_push_select_past_join().transform(query, rulebase)
        assert result == parse_obj(
            "join(lt @ <age o pi1, age o pi2>, id) ! [P, P]")
        assert eval_obj(result, tiny_db) == eval_obj(query, tiny_db)

    def test_selects_below_join_absorbed(self, rulebase, tiny_db):
        query = parse_obj(
            "join(Kp(T), id) o (iterate(Cp(lt, 30) @ age, id) >< id)"
            " ! [P, P]")
        result = block_push_select_past_join().transform(query, rulebase)
        assert result.args[0].op == "join"
        assert eval_obj(result, tiny_db) == eval_obj(query, tiny_db)


class TestCokoDsl:
    def test_parse_single_block(self):
        [block] = parse_coko("""
            TRANSFORMATION T1K
            USES r11, r6, r5
            BEGIN
              once! r11 ; exhaust { r6 r5 }
            END
        """)
        assert block.name == "T1K"
        assert block.uses == ("r11", "r6", "r5")

    def test_parsed_block_runs(self, rulebase, queries):
        [block] = parse_coko("""
            TRANSFORMATION T1K
            USES r11, r6, r5, r5b
            BEGIN
              once! r11 ; exhaust { r6 } ; exhaust { r5 r5b }
            END
        """)
        assert (block.transform(queries.t1k_source, rulebase)
                == queries.t1k_target)

    def test_parse_multiple_blocks(self):
        blocks = parse_coko("""
            TRANSFORMATION A
            USES r1
            BEGIN once r1 END
            TRANSFORMATION B
            USES r2
            BEGIN repeat { once r2 } ; try { once! r1 } END
        """)
        assert [b.name for b in blocks] == ["A", "B"]

    def test_group_refs_in_dsl(self, rulebase, queries):
        [block] = parse_coko("""
            TRANSFORMATION Clean
            USES group:cleanup
            BEGIN exhaust { group:cleanup } END
        """)
        term = parse_fun("id o age o id")
        assert block.transform(term, rulebase) == parse_fun("age")

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_coko("TRANSFORMATION X BEGIN once r1 END")  # missing USES
        with pytest.raises(ParseError):
            parse_coko("""
                TRANSFORMATION X
                USES r1
                BEGIN exhaust { } END
            """)
        with pytest.raises(ParseError):
            parse_coko("""
                TRANSFORMATION X
                USES r1
                BEGIN frobnicate r1 END
            """)
