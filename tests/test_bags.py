"""Tests for the bag extension (Section 6): values, semantics, typing,
rules, and the deferred-duplicate-elimination block."""

import pytest

from repro.core import constructors as C
from repro.core.bags import KBag, as_bag
from repro.core.errors import EvalError, TypeInferenceError
from repro.core.eval import apply_fn, eval_obj
from repro.core.parser import parse_fun, parse_obj
from repro.core.pretty import pretty
from repro.core.types import INT, bag_t, infer, fun_t, set_t
from repro.core.values import KPair, kset
from repro.coko.stdblocks import block_defer_dupelim
from repro.larch.checker import RuleChecker
from repro.rules.bags import (BAG_RULES, UNSOUND_BAG_FLAT_TOBAG,
                              UNSOUND_TOBAG_DISTINCT)


class TestKBag:
    def test_counts(self):
        bag = KBag.of([1, 1, 2])
        assert bag.count(1) == 2
        assert bag.count(2) == 1
        assert bag.count(3) == 0
        assert len(bag) == 3

    def test_equality_by_multiplicity(self):
        assert KBag.of([1, 1]) != KBag.of([1])
        assert KBag.of([1, 2]) == KBag.of([2, 1])

    def test_hashable(self):
        assert KBag.of([1, 1]) in {KBag.of([1, 1])}

    def test_support(self):
        assert KBag.of([1, 1, 2]).support() == kset([1, 2])

    def test_zero_counts_normalized(self):
        assert KBag({1: 0, 2: 3}) == KBag({2: 3})

    def test_negative_count_rejected(self):
        with pytest.raises(EvalError):
            KBag({1: -1})

    def test_map_merges_counts(self):
        bag = KBag.of([1, -1, 2])
        assert bag.map(abs) == KBag({1: 2, 2: 1})

    def test_additive_union(self):
        assert (KBag.of([1]).additive_union(KBag.of([1, 2]))
                == KBag.of([1, 1, 2]))

    def test_flatten(self):
        nested = KBag.of([KBag.of([1]), KBag.of([1, 2])])
        assert nested.flatten() == KBag.of([1, 1, 2])

    def test_flatten_non_bag_member(self):
        with pytest.raises(EvalError):
            KBag.of([1]).flatten()

    def test_iteration_respects_multiplicity(self):
        assert sorted(KBag.of([1, 1, 2])) == [1, 1, 2]

    def test_as_bag(self):
        with pytest.raises(EvalError, match="expected a bag"):
            as_bag(kset([1]))


class TestBagSemantics:
    def test_tobag(self):
        assert apply_fn(C.tobag(), kset([1, 2])) == KBag.of([1, 2])

    def test_distinct(self):
        assert apply_fn(C.distinct(), KBag.of([1, 1, 2])) == kset([1, 2])

    def test_bag_iterate_preserves_counts(self):
        term = C.bag_iterate(C.curry_p(C.lt(), C.lit(0)), C.id_())
        bag = KBag.of([1, 1, 2, -1])
        assert apply_fn(term, bag) == KBag.of([1, 1, 2])

    def test_bag_iterate_merges_images(self):
        double = C.bag_iterate(C.const_p(C.true()),
                               C.const_f(C.lit("x")))
        assert apply_fn(double, KBag.of([1, 2, 3])) == KBag({"x": 3})

    def test_bag_flat(self):
        nested = KBag.of([KBag.of([1]), KBag.of([1])])
        assert apply_fn(C.bag_flat(), nested) == KBag.of([1, 1])

    def test_bag_union(self):
        value = KPair(KBag.of([1]), KBag.of([1, 2]))
        assert apply_fn(C.bag_union(), value) == KBag.of([1, 1, 2])

    def test_bag_join_multiplies(self):
        left = KBag.of(["a", "a"])
        right = KBag.of([1, 1, 1])
        term = C.bag_join(C.const_p(C.true()), C.pi1())
        assert apply_fn(term, KPair(left, right)) == KBag({"a": 6})

    def test_type_errors(self):
        with pytest.raises(EvalError):
            apply_fn(C.distinct(), kset([1]))
        with pytest.raises(EvalError):
            apply_fn(C.tobag(), KBag.of([1]))


class TestBagTyping:
    def test_tobag_type(self):
        t = infer(C.tobag())
        assert t.name == "Fun" and t.args[1].name == "Bag"

    def test_pipeline_type(self):
        term = parse_fun("distinct o bag_iterate(Kp(T), id) o tobag")
        t = infer(term)
        assert t.args[0].name == "Set" and t.args[1].name == "Set"

    def test_bag_set_confusion_rejected(self):
        from repro.core.types import well_typed
        assert not well_typed(parse_fun("distinct o distinct"))
        assert not well_typed(parse_fun("flat o tobag"))

    def test_bag_literal_typing(self):
        assert infer(C.lit(KBag.of([1, 2]))) == bag_t(INT)
        with pytest.raises(TypeInferenceError):
            infer(C.lit(KBag.of([1, "a"])))

    def test_parser_round_trip(self):
        text = "distinct o bag_iterate(Kp(T), city) o tobag"
        term = parse_fun(text)
        assert parse_fun(pretty(term)) == term


class TestBagRules:
    @pytest.mark.parametrize("name", [r.name for r in BAG_RULES])
    def test_rule_sound(self, name):
        rule = next(r for r in BAG_RULES if r.name == name)
        report = RuleChecker(trials=80).check(rule)
        assert report.passed, report.counterexample.render()

    def test_unsound_rules_refuted(self):
        for bad in (UNSOUND_TOBAG_DISTINCT, UNSOUND_BAG_FLAT_TOBAG):
            report = RuleChecker(trials=400).check(bad)
            assert not report.passed, f"{bad.name} should be refuted"


class TestDeferDupelimBlock:
    def test_garage_style_pipeline(self, rulebase, tiny_db):
        query = parse_obj(
            "iterate(Kp(T), city) o flat o iterate(Kp(T), grgs) ! P")
        deferred = block_defer_dupelim().transform(query, rulebase)
        # exactly one distinct, at the head of the chain
        distinct_count = sum(1 for t in deferred.subterms()
                             if t.op == "distinct")
        assert distinct_count == 1
        from repro.rewrite.pattern import flatten_compose
        chain = flatten_compose(deferred.args[0])
        assert chain[0].op == "distinct"
        assert eval_obj(deferred, tiny_db) == eval_obj(query, tiny_db)

    def test_no_flat_no_change_needed(self, rulebase, tiny_db):
        query = parse_obj("iterate(Kp(T), age) ! P")
        result = block_defer_dupelim().transform(query, rulebase)
        assert eval_obj(result, tiny_db) == eval_obj(query, tiny_db)

    def test_filters_fused_into_bag_pipeline(self, rulebase, tiny_db):
        query = parse_obj(
            "iterate(Cp(lt, 21) @ age, id) o flat"
            " o iterate(Kp(T), child) ! P")
        deferred = block_defer_dupelim().transform(query, rulebase)
        assert sum(1 for t in deferred.subterms()
                   if t.op == "distinct") == 1
        assert eval_obj(deferred, tiny_db) == eval_obj(query, tiny_db)
