"""Unit tests for Rule construction, reversal and preconditions."""

import pytest

from repro.core import constructors as C
from repro.core.errors import (PreconditionError, RewriteError)
from repro.core.terms import Sort
from repro.rewrite.rule import Goal, NO_ORACLE, Rule, rule
from repro.rules.preconditions import AnnotationOracle


class TestRuleValidation:
    def test_simple_rule(self):
        r = rule("test-id", "$f o id", "$f")
        assert r.lhs.op == "compose"
        assert r.rhs.op == "meta"

    def test_sort_mismatch_rejected(self):
        with pytest.raises(RewriteError, match="sorts"):
            Rule("bad", C.id_(), C.eq())

    def test_rhs_fresh_var_rejected(self):
        with pytest.raises(RewriteError, match="do not appear"):
            rule("bad", "$f", "$f o $g")

    def test_type_incompatible_rejected(self):
        from repro.core.errors import TypeInferenceError
        with pytest.raises(TypeInferenceError):
            rule("bad", "flat o $f", "$f")

    def test_precondition_unknown_var_rejected(self):
        with pytest.raises(PreconditionError):
            rule("bad", "$f o id", "$f",
                 preconditions=(Goal("injective", "g"),))

    def test_display_name(self):
        r = rule("r1", "$f o id", "$f", number=1)
        assert r.display_name == "rule 1 (r1)"
        r2 = rule("pair-law", "pi1 o <$f, $g>", "$f")
        assert r2.display_name == "pair-law"

    def test_repr_readable(self):
        r = rule("r1x", "$f o id", "$f", number=1)
        assert "$f o id" in repr(r)


class TestReversal:
    def test_reverse(self):
        r = rule("test-rev", "iterate($p, id) o iterate(Kp(T), $f)",
                 "iterate($p @ $f, $f)")
        rev = r.reversed()
        assert rev.lhs == r.rhs
        assert rev.rhs == r.lhs
        assert rev.name == "test-rev-rev"

    def test_unidirectional_not_reversible(self):
        r = rule("one-way", "con($p, $f, $f)", "$f", bidirectional=False)
        with pytest.raises(RewriteError, match="not bidirectional"):
            r.reversed()

    def test_var_dropping_not_reversible(self):
        r = rule("drop", "pi1 o <$f, $g>", "$f")
        with pytest.raises(RewriteError, match="cannot be reversed"):
            r.reversed()


class TestPreconditions:
    def test_no_oracle_blocks_conditional(self):
        goal = Goal("injective", "f")
        r = rule("cond-rule", "eq @ ($f >< $f)", "eq", sort=Sort.PRED,
                 preconditions=(goal,), bidirectional=False)
        assert not r.check_preconditions({"f": C.id_()}, NO_ORACLE)

    def test_oracle_unblocks(self):
        goal = Goal("injective", "f")
        r = rule("cond-rule2", "eq @ ($f >< $f)", "eq", sort=Sort.PRED,
                 preconditions=(goal,), bidirectional=False)
        oracle = AnnotationOracle()
        assert r.check_preconditions({"f": C.id_()}, oracle)  # id injective
        assert not r.check_preconditions({"f": C.prim("age")}, oracle)
        oracle.declare("injective", C.prim("age"))
        assert r.check_preconditions({"f": C.prim("age")}, oracle)


class TestAnnotationOracle:
    def test_inference_compose(self):
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("ssn"))
        term = C.compose(C.id_(), C.prim("ssn"))
        assert oracle.holds("injective", term)

    def test_paper_inference_rule(self):
        """injective(f) /\\ injective(g) ==> injective(f o g)."""
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("f"))
        oracle.declare("injective", C.prim("g"))
        assert oracle.holds("injective",
                            C.compose(C.prim("f"), C.prim("g")))
        assert not oracle.holds("injective",
                                C.compose(C.prim("f"), C.prim("h")))

    def test_pair_any_side(self):
        oracle = AnnotationOracle()
        term = C.pair(C.id_(), C.prim("age"))
        assert oracle.holds("injective", term)  # <id, g> keeps the input

    def test_cross_needs_both(self):
        oracle = AnnotationOracle()
        assert oracle.holds("injective", C.cross(C.id_(), C.id_()))
        assert not oracle.holds("injective", C.cross(C.id_(), C.prim("age")))

    def test_constant_property(self):
        oracle = AnnotationOracle()
        assert oracle.holds("constant", C.const_f(C.lit(1)))
        assert oracle.holds("constant",
                            C.compose(C.prim("age"), C.const_f(C.lit(1))))
        assert not oracle.holds("constant", C.prim("age"))

    def test_total_property(self):
        oracle = AnnotationOracle()
        assert oracle.holds("total", C.compose(C.prim("age"), C.pi1()))

    def test_unknown_property(self):
        oracle = AnnotationOracle()
        with pytest.raises(PreconditionError):
            oracle.holds("bijective", C.id_())
        with pytest.raises(PreconditionError):
            oracle.declare("bijective", C.id_())
