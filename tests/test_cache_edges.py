"""Edge cases in the parallel serving layer: degenerate cache
capacities, single-shard sharding, empty stat merges, and the
dead-worker reclaim path in the batch pool loop."""

from __future__ import annotations

import queue as queue_module
import time

import pytest

from repro.core.parser import parse_query
from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import BatchOptimizer
from repro.parallel.cache import (LRUCache, ShardedLRUCache,
                                  merge_cache_info)
from repro.schema.generator import tiny_database

# ---------------------------------------------------------------------------
# LRUCache


def test_lru_capacity_one_keeps_only_most_recent():
    cache = LRUCache(max_size=1)
    cache.put("a", 1)
    cache.put("b", 2)
    assert len(cache) == 1
    assert cache.evictions == 1
    assert cache.get("a") is None
    assert cache.get("b") == 2
    assert (cache.hits, cache.misses) == (1, 1)


def test_lru_get_refreshes_recency_put_refreshes_too():
    cache = LRUCache(max_size=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # "a" is now most recent
    cache.put("c", 3)                   # evicts "b", not "a"
    assert cache.keys() == ["a", "c"]
    cache.put("a", 10)                  # refresh via put
    assert cache.keys() == ["c", "a"]
    assert cache.get("a") == 10


def test_lru_peek_and_evict_edges():
    cache = LRUCache(max_size=2)
    cache.evict_lru()                   # no-op on empty cache
    assert cache.evictions == 0
    cache.put("a", 1)
    assert cache.peek("a") == 1
    assert cache.peek("missing", "dflt") == "dflt"
    assert (cache.hits, cache.misses) == (0, 0)  # peek never counts
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValueError):
        LRUCache(max_size=0)


def test_lru_put_with_override_bound():
    cache = LRUCache(max_size=10)
    for key in range(5):
        cache.put(key, key)
    cache.put("last", 99, max_size=2)   # tighter per-call bound
    assert len(cache) == 2
    assert cache.keys() == [4, "last"]


# ---------------------------------------------------------------------------
# ShardedLRUCache


def test_single_shard_degenerates_to_exact_lru():
    sharded = ShardedLRUCache(max_size=2, shards=1)
    reference = LRUCache(max_size=2)
    for key, value in [("a", 1), ("b", 2), ("a", 3), ("c", 4)]:
        sharded.put(key, value)
        reference.put(key, value)
    assert sharded.shard(0).keys() == reference.keys()
    assert len(sharded) == len(reference) == 2
    assert sharded.get("b") is reference.get("b") is None
    info = sharded.info()
    assert info["shards"] == 1
    assert info["size"] == 2


def test_sharded_global_bound_holds_under_skew():
    """All keys landing in one shard must not grow the cache past the
    global budget: the fullest shard pays the eviction."""
    sharded = ShardedLRUCache(max_size=3, shards=4)
    shard = sharded.shard_of("k0")
    keys = [f"k{i}" for i in range(40)]
    skewed = [k for k in keys if sharded.shard_of(k) == shard][:6]
    assert len(skewed) >= 4             # hash skew exists at this scale
    for key in skewed:
        sharded.put(key, key)
    assert len(sharded) <= 3
    assert sharded.get(skewed[-1]) == skewed[-1]
    with pytest.raises(ValueError):
        ShardedLRUCache(max_size=4, shards=0)


# ---------------------------------------------------------------------------
# merge_cache_info


def test_merge_cache_info_empty_is_all_zero():
    merged = merge_cache_info([])
    assert merged == {"size": 0, "max_size": 0, "hits": 0, "misses": 0,
                      "evictions": 0}


def test_merge_cache_info_sums_and_ignores_unknown_keys():
    merged = merge_cache_info([
        {"size": 1, "max_size": 8, "hits": 3, "misses": 1,
         "evictions": 0, "worker": 7, "shards": 2},
        {"size": 2, "hits": 1},
    ])
    assert merged == {"size": 3, "max_size": 8, "hits": 4, "misses": 1,
                      "evictions": 0}


# ---------------------------------------------------------------------------
# dead-worker reclaim


class _DeadProc:
    """A worker process that died before producing anything."""

    def is_alive(self) -> bool:
        return False


class _SinkQueue:
    """Task queue for a dead worker: accepts and drops everything."""

    def put(self, item) -> None:
        pass


class _EmptyQueue:
    """Result queue that never yields: every get times out."""

    def get(self, timeout=None):
        raise queue_module.Empty


def test_dead_worker_tasks_are_reclaimed_in_process():
    """If a pool worker dies with tasks outstanding, ``_run_pool`` must
    notice (result-queue timeout + liveness probe), reclaim the
    worker's whole assignment, and rerun it through the in-process
    fallback — same results as sequential optimization, worker ``-1``.
    """
    db = tiny_database(seed=17)
    queries = ["count ! P", "iterate(Kp(T), id) ! V", "id ! A"]
    terms = [parse_query(q) for q in queries]

    batcher = BatchOptimizer(db, workers=1)
    batcher._procs = [_DeadProc()]
    batcher._task_queues = [_SinkQueue()]
    batcher._result_queue = _EmptyQueue()
    try:
        report = batcher._run_pool(list(queries), terms,
                                   time.perf_counter())
    finally:
        batcher._procs = []
        batcher._task_queues = []
        batcher._result_queue = None

    assert len(report.results) == len(queries)
    sequential = Optimizer()
    for index, (query, term) in enumerate(zip(queries, terms)):
        outcome = report.results[index]
        assert outcome is not None
        assert outcome.worker == -1
        assert outcome.query == query
        expected = sequential.optimize(term, db).execute(db)
        assert outcome.result.execute(db) == expected
    # the rerun's in-process stats are reported as pseudo-worker -1
    assert report.per_worker and report.per_worker[-1]["worker"] == -1
    assert report.plan_cache["size"] >= 0
