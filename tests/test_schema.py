"""Unit tests for the schema substrate and the synthetic generator."""

import pytest

from repro.core.errors import EvalError, UnknownPrimitiveError
from repro.core.values import Instance
from repro.schema.adt import ADT, Attribute, Database, Schema
from repro.schema.generator import GeneratorConfig, generate_database
from repro.schema.paper_schema import paper_schema


class TestSchemaDeclaration:
    def test_paper_schema_shape(self):
        schema = paper_schema()
        person = schema.adt("Person")
        assert set(person.attribute_names()) >= {
            "addr", "age", "child", "cars", "grgs"}
        assert schema.collection_adt("P") == "Person"
        assert schema.collection_adt("V") == "Vehicle"

    def test_attribute_lookup(self):
        schema = paper_schema()
        assert schema.attribute_type("Address", "city") == "Str"
        with pytest.raises(UnknownPrimitiveError):
            schema.adt("Person").attribute("salary")

    def test_function_signature(self):
        schema = paper_schema()
        assert schema.function_signature("age") == ("Person", "Int")
        assert schema.function_signature("nope") is None

    def test_duplicate_adt_rejected(self):
        schema = Schema()
        schema.add_adt(ADT("X", ()))
        with pytest.raises(ValueError):
            schema.add_adt(ADT("X", ()))

    def test_duplicate_attribute_names_rejected(self):
        schema = Schema()
        schema.add_adt(ADT("A", (Attribute("f", "Int"),)))
        schema.add_adt(ADT("B", (Attribute("f", "Int"),)))
        with pytest.raises(ValueError, match="declared twice"):
            schema.validate()

    def test_computed_primitives(self):
        schema = paper_schema()
        schema.register_function("double_age",
                                 lambda p: p.get("age") * 2,
                                 "Person", "Int")
        schema.register_predicate("adult",
                                  lambda p: p.get("age") >= 18, "Person")
        db = Database(schema)
        person = Instance("Person", 0)
        person.set_attr("age", 21)
        assert db.apply_prim("double_age", person) == 42
        assert db.test_pprim("adult", person)

    def test_nonboolean_predicate_rejected(self):
        schema = paper_schema()
        schema.register_predicate("broken", lambda p: 1, "Person")  # type: ignore
        db = Database(schema)
        with pytest.raises(EvalError, match="non-boolean"):
            db.test_pprim("broken", Instance("Person", 0))


class TestDatabase:
    def test_unpopulated_collection(self):
        db = Database(paper_schema())
        with pytest.raises(EvalError, match="not populated"):
            db.collection("P")

    def test_undeclared_collection(self):
        db = Database(paper_schema())
        with pytest.raises(EvalError, match="unknown collection"):
            db.set_collection("Q", [])

    def test_unknown_prim(self, tiny_db):
        person = next(iter(tiny_db.collection("P")))
        with pytest.raises(UnknownPrimitiveError):
            tiny_db.apply_prim("salary", person)

    def test_stats(self, tiny_db):
        stats = tiny_db.stats()
        assert stats["P"] == 8
        assert stats["V"] == 5


class TestGenerator:
    def test_deterministic(self):
        db1 = generate_database(GeneratorConfig(seed=5))
        db2 = generate_database(GeneratorConfig(seed=5))
        ages1 = sorted(p.get("age") for p in db1.collection("P"))
        ages2 = sorted(p.get("age") for p in db2.collection("P"))
        assert ages1 == ages2

    def test_seed_changes_data(self):
        db1 = generate_database(GeneratorConfig(seed=5))
        db2 = generate_database(GeneratorConfig(seed=6))
        ages1 = sorted(p.get("age") for p in db1.collection("P"))
        ages2 = sorted(p.get("age") for p in db2.collection("P"))
        assert ages1 != ages2

    def test_cardinalities(self):
        config = GeneratorConfig(n_persons=12, n_vehicles=7, n_addresses=5)
        db = generate_database(config)
        assert len(db.collection("P")) == 12
        assert len(db.collection("V")) == 7
        assert len(db.collection("A")) == 5

    def test_references_are_closed(self, db):
        """Every referenced object exists in its collection."""
        persons = db.collection("P")
        vehicles = db.collection("V")
        addresses = db.collection("A")
        for person in persons:
            assert person.get("addr") in addresses
            assert person.get("cars") <= vehicles
            assert person.get("child") <= persons
            assert person.get("grgs") <= addresses
            assert person not in person.get("child")

    def test_age_bounds(self, db):
        for person in db.collection("P"):
            low, high = GeneratorConfig().age_range
            assert low <= person.get("age") <= high
