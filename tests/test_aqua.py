"""Unit tests for the AQUA substrate: evaluation, variable machinery,
and the head/body-routine rule engine (the paper's Section 2)."""

import pytest

from repro.aqua.analysis import (alpha_equal, alpha_rename, bound_vars,
                                 compose_lambdas, free_vars, fresh_name,
                                 substitute)
from repro.aqua.eval import aqua_eval
from repro.aqua.rules import (AquaRuleEngine, CODE_MOTION, STANDARD_AQUA_RULES,
                              T1_COMPOSE_APP, T2_SPLIT_SEL)
from repro.aqua.terms import (App, Attr, BinCmp, BoolOp, Const, Flatten,
                              IfE, In, Join, Lam, Not, PairE, Sel, SetRef,
                              Var, aqua_pretty)
from repro.core.errors import AquaError
from repro.core.values import KPair, kset


class TestEvaluation:
    def test_app(self, tiny_db):
        query = App(Lam("p", Attr(Var("p"), "age")), SetRef("P"))
        expected = kset(p.get("age") for p in tiny_db.collection("P"))
        assert aqua_eval(query, tiny_db) == expected

    def test_sel(self, tiny_db):
        query = Sel(Lam("p", BinCmp(">", Attr(Var("p"), "age"), Const(25))),
                    SetRef("P"))
        expected = kset(p for p in tiny_db.collection("P")
                        if p.get("age") > 25)
        assert aqua_eval(query, tiny_db) == expected

    def test_flatten(self, tiny_db):
        query = Flatten(App(Lam("p", Attr(Var("p"), "child")), SetRef("P")))
        expected = set()
        for person in tiny_db.collection("P"):
            expected.update(person.get("child"))
        assert aqua_eval(query, tiny_db) == kset(expected)

    def test_join(self, tiny_db):
        query = Join(Lam("x", Lam("y", BinCmp("==", Attr(Var("x"), "age"),
                                              Attr(Var("y"), "age")))),
                     Lam("x", Lam("y", PairE(Var("x"), Var("y")))),
                     SetRef("P"), SetRef("P"))
        result = aqua_eval(query, tiny_db)
        for pair in result:
            assert pair.fst.get("age") == pair.snd.get("age")

    def test_boolean_operators(self):
        expr = BoolOp("and", Const(True), Not(Const(False)))
        assert aqua_eval(expr) is True
        assert aqua_eval(BoolOp("or", Const(False), Const(False))) is False

    def test_conditional(self):
        expr = IfE(Const(True), Const(1), Const(2))
        assert aqua_eval(expr) == 1

    def test_membership(self):
        expr = In(Const(1), Const(kset([1, 2])))
        assert aqua_eval(expr) is True

    def test_unbound_variable(self):
        with pytest.raises(AquaError, match="unbound"):
            aqua_eval(Var("x"))

    def test_lambda_not_a_value(self):
        with pytest.raises(AquaError):
            aqua_eval(Lam("x", Var("x")))

    def test_attr_on_non_object(self):
        with pytest.raises(AquaError, match="non-object"):
            aqua_eval(Attr(Const(3), "age"))


class TestVariableMachinery:
    def test_free_vars(self):
        expr = Sel(Lam("c", BinCmp(">", Attr(Var("p"), "age"), Const(25))),
                   Attr(Var("p"), "child"))
        assert free_vars(expr) == {"p"}

    def test_lambda_binds(self):
        expr = Lam("p", Attr(Var("p"), "age"))
        assert free_vars(expr) == frozenset()

    def test_bound_vars(self):
        expr = App(Lam("p", Sel(Lam("c", Const(True)), SetRef("P"))),
                   SetRef("P"))
        assert bound_vars(expr) == {"p", "c"}

    def test_substitute(self):
        expr = BinCmp(">", Attr(Var("x"), "age"), Const(25))
        result = substitute(expr, "x", Var("p"))
        assert result == BinCmp(">", Attr(Var("p"), "age"), Const(25))

    def test_substitute_respects_shadowing(self):
        expr = Lam("x", Var("x"))
        assert substitute(expr, "x", Const(1)) == expr

    def test_substitute_capture_avoiding(self):
        # (\(y) x)[x := y]  must NOT become (\(y) y)
        expr = Lam("y", Var("x"))
        result = substitute(expr, "x", Var("y"))
        assert isinstance(result, Lam)
        assert result.var != "y"
        assert result.body == Var("y")

    def test_alpha_rename(self):
        lam = Lam("x", Attr(Var("x"), "age"))
        renamed = alpha_rename(lam, "p")
        assert renamed == Lam("p", Attr(Var("p"), "age"))

    def test_alpha_rename_capture_rejected(self):
        lam = Lam("x", PairE(Var("x"), Var("p")))
        with pytest.raises(ValueError, match="capture"):
            alpha_rename(lam, "p")

    def test_alpha_equal(self):
        a = Lam("x", Attr(Var("x"), "age"))
        b = Lam("p", Attr(Var("p"), "age"))
        assert alpha_equal(a, b)
        assert not alpha_equal(a, Lam("p", Attr(Var("p"), "addr")))

    def test_fresh_name(self):
        assert fresh_name("x", frozenset()) == "x"
        assert fresh_name("x", frozenset({"x", "x_1"})) == "x_2"

    def test_compose_lambdas(self):
        """T1's body routine: \\(a)a.city composed with \\(p)p.addr
        gives \\(p)p.addr.city."""
        outer = Lam("a", Attr(Var("a"), "city"))
        inner = Lam("p", Attr(Var("p"), "addr"))
        composed = compose_lambdas(outer, inner)
        assert composed == Lam("p", Attr(Attr(Var("p"), "addr"), "city"))


class TestAquaRules:
    def test_t1_fires(self, queries, db_pair):
        engine = AquaRuleEngine()
        result = engine.rewrite_once(queries.t1_source_aqua,
                                     [T1_COMPOSE_APP])
        assert result is not None
        transformed, rule = result
        assert alpha_equal(transformed, queries.t1_target_aqua)
        for database in db_pair:
            assert (aqua_eval(transformed, database)
                    == aqua_eval(queries.t1_source_aqua, database))

    def test_t2_fires_with_alpha_renaming(self, queries, db_pair):
        """T2's head routine must rename \\(x)x.age to \\(p)p.age to see
        the subfunction relationship."""
        engine = AquaRuleEngine()
        result = engine.rewrite_once(queries.t2_source_aqua, [T2_SPLIT_SEL])
        assert result is not None
        transformed, _ = result
        assert alpha_equal(transformed, queries.t2_target_aqua)
        for database in db_pair:
            assert (aqua_eval(transformed, database)
                    == aqua_eval(queries.t2_source_aqua, database))

    def test_t2_rejects_non_matching_predicate(self):
        query = App(Lam("x", Attr(Var("x"), "age")),
                    Sel(Lam("p", BinCmp(">", Attr(Var("p"), "year"),
                                        Const(25))), SetRef("P")))
        assert T2_SPLIT_SEL.head(query) is None

    def test_code_motion_fires_on_a4(self, queries, db_pair):
        """Figure 2: A4's inner predicate tests p (free in the inner
        lambda) so code motion applies."""
        evidence = CODE_MOTION.head(queries.a4_aqua)
        assert evidence is not None
        transformed = CODE_MOTION.body(queries.a4_aqua, evidence)
        assert isinstance(transformed.fn.body, IfE)
        for database in db_pair:
            assert (aqua_eval(transformed, database)
                    == aqua_eval(queries.a4_aqua, database))

    def test_code_motion_rejects_a3(self, queries):
        """A3 is structurally identical but its predicate tests c — the
        head routine's environmental analysis must reject it."""
        assert CODE_MOTION.head(queries.a3_aqua) is None

    def test_engine_counts_head_invocations(self, queries):
        engine = AquaRuleEngine()
        engine.normalize(queries.a3_aqua, STANDARD_AQUA_RULES)
        assert engine.stats.head_invocations > 0

    def test_normalize_applies_rule_names(self, queries):
        engine = AquaRuleEngine()
        _, applied = engine.normalize(queries.t1_source_aqua,
                                      [T1_COMPOSE_APP])
        assert applied == ["T1-compose-app"]


class TestPrettyPrinting:
    def test_lambda_notation(self):
        expr = App(Lam("p", Attr(Var("p"), "age")), SetRef("P"))
        assert aqua_pretty(expr) == "app(\\(p)p.age)(P)"

    def test_figure2_form(self, queries):
        text = aqua_pretty(queries.a4_aqua)
        assert "sel(" in text and "child" in text

    def test_size(self, queries):
        assert queries.garage_aqua.size() == 17
