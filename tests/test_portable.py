"""Property tests for the portable term wire form.

The contract under test (``Term.to_portable`` / ``from_portable``):

* **Identity round-trip** — decoding a payload in the process that
  encoded it returns the *same interned object*, with every
  construction-time cache (size, depth, ops, groundness) intact.
* **Cross-process round-trip** — a payload shipped to a ``spawn``
  worker re-interns there and survives the trip back bit-identically.
* **Validation** — malformed payloads are rejected with
  :class:`~repro.core.errors.PortableTermError` and a usable message,
  never with a crash or a silently wrong term.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random

import pytest

from repro.core import constructors as C
from repro.core.errors import PortableTermError
from repro.core.parser import parse_obj
from repro.core.terms import (PORTABLE_VERSION, Sort, Term, from_portable,
                              meta, obj_var)
from repro.rewrite.pattern import build_chain, canon
from repro.rules.registry import standard_rulebase
from repro.workloads.queries import paper_queries


def _sample_terms() -> list[Term]:
    queries = paper_queries()
    samples = [queries.kg1, queries.kg2, queries.t1k_source,
               queries.t2k_target, queries.k4, queries.k4_code_moved,
               C.id_(), C.lit(frozenset({1, 2, 3})),
               parse_obj("iterate(Kp(T), city o addr) ! P"),
               meta("f", Sort.FUN), obj_var("x")]
    for one_rule in standard_rulebase().all_rules():
        samples.append(one_rule.lhs)
        samples.append(one_rule.rhs)
    return samples


class TestRoundTrip:
    def test_identity_and_caches(self):
        for term in _sample_terms():
            back = from_portable(term.to_portable())
            assert back is term
            assert back.size() == term.size()
            assert back.depth() == term.depth()
            assert back.ops == term.ops
            assert back.is_ground() == term.is_ground()

    def test_payload_is_deterministic(self):
        for term in _sample_terms():
            assert term.to_portable() == term.to_portable()

    def test_payload_is_memoized_on_the_term(self):
        # Repeat shipping of the same query is the batch hot path: the
        # payload is built once and cached on the (immutable) term.
        term = paper_queries().kg1
        assert term.to_portable() is term.to_portable()

    def test_decode_memo_is_transparent(self):
        # A memo hit must return exactly what a cold decode returns.
        from repro.core import terms as terms_module
        term = paper_queries().kg1
        payload = term.to_portable()
        terms_module._DECODE_MEMO.clear()
        cold = from_portable(payload)
        assert payload in terms_module._DECODE_MEMO
        assert from_portable(payload) is cold is term
        # List-form (unhashable) payloads still decode, uncached.
        listy = [payload[0], payload[1], payload[2]]
        assert from_portable(listy) is term

    def test_payload_is_builtin_only(self):
        def check(node):
            assert isinstance(node, (tuple, str, int, float, bool,
                                     type(None)))
            if isinstance(node, tuple):
                for item in node:
                    check(item)
        check(paper_queries().kg1.to_portable())

    def test_shared_subterms_encoded_once(self):
        shared = parse_obj("iterate(Kp(T), age) ! P")
        term = Term("pairobj", (shared, shared))
        tag, version, table = term.to_portable()
        assert tag == "kola-term" and version == PORTABLE_VERSION
        # One table row per *distinct* subterm, not per occurrence —
        # strictly fewer rows than the occurrence count ``size()``.
        assert len(table) == len(set(term.subterms())) < term.size()

    def test_deep_chain_roundtrip_and_pickle(self):
        deep = build_chain([C.prim(f"a{i % 7}") for i in range(4000)])
        assert from_portable(deep.to_portable()) is deep
        assert pickle.loads(pickle.dumps(deep)) is deep

    def test_pickle_roundtrip_is_identity(self):
        for term in _sample_terms():
            assert pickle.loads(pickle.dumps(term)) is term

    def test_value_labels_roundtrip(self):
        from repro.core.bags import KBag
        from repro.core.lists import KList
        from repro.core.values import KPair
        for payload in (KBag.of([1, 1, 2]), KList([3, 1, 2]),
                        KPair(1, "x"), frozenset({frozenset({1})}),
                        (1, (2, 3)), 2.5, True, "name"):
            term = C.lit(payload)
            assert from_portable(term.to_portable()) is term

    def test_random_rule_applications_roundtrip(self):
        """Fuzz: every form reachable by a short random rewrite walk
        round-trips to the identical interned term."""
        rng = random.Random(2026)
        from repro.rewrite.engine import Engine
        engine = Engine()
        base = standard_rulebase()
        rules = base.group("simplify")
        current = paper_queries().kg1
        for _ in range(12):
            assert from_portable(current.to_portable()) is current
            successors = engine.successors(current, rules)
            if not successors:
                break
            current = rng.choice(successors).term


def _spawn_probe(payload):
    """Runs in a spawn worker: re-intern, check invariants, echo back."""
    term = from_portable(payload)
    again = from_portable(payload)
    return {
        "same_object": term is again,
        "size": term.size(),
        "depth": term.depth(),
        "ops": sorted(term.ops),
        "ground": term.is_ground(),
        "echo": term.to_portable(),
        "canon_is_identity": canon(term) is term,
    }


class TestSpawnRoundTrip:
    @pytest.fixture(scope="class")
    def pool(self):
        context = multiprocessing.get_context("spawn")
        with context.Pool(1) as pool:
            yield pool

    def test_spawn_roundtrip(self, pool):
        queries = paper_queries()
        for term in (queries.kg1, queries.kg2, queries.t2k_source):
            report = pool.apply(_spawn_probe, (term.to_portable(),))
            assert report["same_object"], "worker-side interning broken"
            assert report["size"] == term.size()
            assert report["depth"] == term.depth()
            assert report["ops"] == sorted(term.ops)
            assert report["ground"] == term.is_ground()
            assert report["canon_is_identity"] == (canon(term) is term)
            assert from_portable(report["echo"]) is term

    def test_spawn_pickle_of_term_itself(self, pool):
        """Terms embedded in pickled arguments/results cross the
        boundary transparently via ``__reduce__``."""
        term = paper_queries().t1k_target
        back = pool.apply(canon, (term,))
        assert back is canon(term)


class TestRejection:
    @pytest.mark.parametrize("payload", [
        None,
        42,
        "kola-term",
        ("kola-term", PORTABLE_VERSION),
        ("not-a-term", PORTABLE_VERSION, (("id", (), None),)),
        ("kola-term", PORTABLE_VERSION + 1, (("id", (), None),)),
        ("kola-term", PORTABLE_VERSION, ()),
        ("kola-term", PORTABLE_VERSION, "junk"),
        ("kola-term", PORTABLE_VERSION, (("id", (), None, "extra"),)),
        ("kola-term", PORTABLE_VERSION, ((7, (), None),)),
        ("kola-term", PORTABLE_VERSION, (("no-such-op", (), None),)),
        ("kola-term", PORTABLE_VERSION, (("compose", (), None),)),
        ("kola-term", PORTABLE_VERSION, (("prim", (), None),)),
        ("kola-term", PORTABLE_VERSION, (("id", (), "stray-label"),)),
        ("kola-term", PORTABLE_VERSION, (("id", (0,), None),)),
        ("kola-term", PORTABLE_VERSION,
         (("id", (), None), ("compose", (0, 9), None))),
        ("kola-term", PORTABLE_VERSION, (("id", ("x",), None),)),
        ("kola-term", PORTABLE_VERSION, (("lit", (), ("sort", "bogus")),)),
        ("kola-term", PORTABLE_VERSION, (("lit", (), ("weird", ())),)),
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(PortableTermError) as excinfo:
            from_portable(payload)
        assert str(excinfo.value)  # a real message, not an empty raise

    def test_sort_mismatch_rejected(self):
        # invoke expects (FUN, OBJ); hand it two OBJ children.
        setname = ("setname", (), "P")
        payload = ("kola-term", PORTABLE_VERSION,
                   (setname, ("invoke", (0, 0), None)))
        with pytest.raises(PortableTermError, match="invoke"):
            from_portable(payload)

    def test_unportable_label_rejected_on_encode(self):
        class Weird:
            pass
        term = Term("lit", (), None)  # placeholder for a direct call
        del term
        with pytest.raises(PortableTermError, match="no portable"):
            from repro.core.terms import _encode_label
            _encode_label(Weird())
