"""Schema genericity: the whole stack on a second, unrelated schema.

Nothing in the algebra, rules, translator or optimizer is specific to
the paper's Person/Vehicle/Address schema — primitives are resolved by
name against whatever schema the database carries.  This test builds a
company schema (Departments and Employees), populates it by hand, and
runs OQL, rewriting, untangling and planning over it.
"""

import pytest

from repro.aqua.eval import aqua_eval
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.types import infer, set_t, TCon
from repro.core.values import Instance, kset
from repro.optimizer.optimizer import Optimizer
from repro.schema.adt import ADT, Attribute, Database, Schema
from repro.translate.aqua_to_kola import translate_query
from repro.translate.oql import parse_oql


@pytest.fixture(scope="module")
def company_db():
    schema = Schema()
    schema.add_adt(ADT("Dept", (
        Attribute("dname", "Str"),
        Attribute("head", "Emp"),
        Attribute("staff", "Set(Emp)"),
    )))
    schema.add_adt(ADT("Emp", (
        Attribute("ename", "Str"),
        Attribute("salary", "Int"),
        Attribute("reports", "Set(Emp)"),
    )))
    schema.declare_collection("D", "Dept")
    schema.declare_collection("E", "Emp")
    schema.validate()

    db = Database(schema)
    emps = [Instance("Emp", i) for i in range(9)]
    for i, emp in enumerate(emps):
        emp.set_attr("ename", f"emp{i}")
        emp.set_attr("salary", 1000 * (i + 1))
        emp.set_attr("reports", kset(emps[3 * i + 3:3 * i + 6]))
    depts = [Instance("Dept", i) for i in range(3)]
    for i, dept in enumerate(depts):
        dept.set_attr("dname", f"d{i}")
        dept.set_attr("head", emps[i])
        dept.set_attr("staff", kset(emps[3 * i:3 * i + 3]))
    db.set_collection("D", depts)
    db.set_collection("E", emps)
    return db


class TestCompanySchema:
    def test_direct_query(self, company_db):
        query = parse_obj("iterate(Kp(T), salary) ! E")
        result = eval_obj(query, company_db)
        assert result == kset(1000 * (i + 1) for i in range(9))

    def test_typing_against_new_schema(self, company_db):
        query = parse_obj("iterate(Kp(T), salary o head) ! D")
        assert infer(query, company_db.schema) == set_t(TCon("Int"))

    def test_oql_over_new_schema(self, company_db):
        query = parse_oql(
            "select d.dname from d in D where d.head.salary > 1500")
        kola = translate_query(query)
        assert (eval_obj(kola, company_db)
                == aqua_eval(query, company_db))

    def test_hidden_join_untangles(self, rulebase, company_db):
        """A correlated nested query over the company schema flows
        through the same five-step strategy."""
        oql = ("select [e, (select r from r in E"
               " where e in r.reports)] from e in E")
        aqua = parse_oql(oql)
        optimized = Optimizer(rulebase).optimize(aqua, company_db)
        from repro.optimizer.physical import JoinNestPlan
        assert isinstance(optimized.plan, JoinNestPlan)
        assert optimized.plan.membership_fn is not None
        assert optimized.execute(company_db) == aqua_eval(aqua,
                                                          company_db)

    def test_rewrites_schema_agnostic(self, rulebase, company_db, engine):
        unfused = parse_obj(
            "iterate(Kp(T), ename) o iterate(Kp(T), head) ! D")
        fused = engine.normalize(unfused, [rulebase.get("r11"),
                                           rulebase.get("r5"),
                                           rulebase.get("r6")])
        assert fused == parse_obj("iterate(Kp(T), ename o head) ! D")
        assert eval_obj(fused, company_db) == eval_obj(unfused,
                                                       company_db)

    def test_wrong_schema_prim_rejected(self, company_db):
        from repro.core.errors import UnknownPrimitiveError
        query = parse_obj("iterate(Kp(T), age) ! E")  # 'age' is paper-schema
        with pytest.raises(UnknownPrimitiveError):
            eval_obj(query, company_db)
