"""Tests for the KOLA -> AQUA decompiler (the readable view of the
internal algebra)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqua.analysis import alpha_equal
from repro.aqua.eval import aqua_eval
from repro.aqua.terms import aqua_pretty
from repro.core.errors import TranslationError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.translate.aqua_to_kola import translate_query
from repro.translate.kola_to_aqua import decompile, decompile_fn


class TestDecompileFidelity:
    def test_kg1_decompiles_to_garage_source(self, queries):
        """The flagship round trip: Figure 3's KG1 decompiles to the
        original AQUA garage query (up to variable names)."""
        recovered = decompile(queries.kg1)
        assert alpha_equal(recovered, queries.garage_aqua)

    def test_k3_k4_round_trip(self, queries):
        assert alpha_equal(decompile(queries.k3), queries.a3_aqua)
        assert alpha_equal(decompile(queries.k4), queries.a4_aqua)

    def test_t1_source_round_trip(self, queries):
        assert alpha_equal(decompile(queries.t1k_source),
                           queries.t1_source_aqua)

    @pytest.mark.parametrize("text", [
        "iterate(Kp(T), city o addr) ! P",
        "iterate(gt @ <age, Kf(25)>, age) ! P",
        "iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P",
        "flat o iterate(Kp(T), grgs) ! P",
        "join(eq @ (age >< age), id) ! [P, P]",
        "count o iterate(Kp(T), id) ! P",
        "iterate(Kp(T), con(Cp(lt, 25) @ age, child, Kf({}))) ! P",
        "iterate(~(Cp(lt, 30) @ age) | in @ <id, child>, id) ! P",
    ])
    def test_semantics_preserved(self, text, tiny_db):
        query = parse_obj(text)
        recovered = decompile(query)
        assert aqua_eval(recovered, tiny_db) == eval_obj(query, tiny_db)

    def test_translate_decompile_inverse(self, queries, tiny_db):
        """translate o decompile is the identity on translator output."""
        for query in (queries.kg1, queries.k3, queries.k4):
            assert translate_query(decompile(query)) == query

    def test_decompile_fn(self):
        lam = decompile_fn(parse_obj("city o addr ! p").args[0], "p")
        assert aqua_pretty(lam) == "\\(p)p.addr.city"


class TestDecompileLimits:
    def test_untangled_form_not_decompilable(self, queries):
        """nest/unnest have no counterpart in the paper's AQUA fragment —
        the internal form is genuinely internal."""
        with pytest.raises(TranslationError, match="no AQUA counterpart"):
            decompile(queries.kg2)

    def test_bag_forms_not_decompilable(self):
        query = parse_obj("distinct o bag_iterate(Kp(T), id) o tobag ! P")
        with pytest.raises(TranslationError):
            decompile(query)

    def test_metavariables_rejected(self):
        from repro.core import constructors as C
        from repro.core.terms import obj_var
        with pytest.raises(TranslationError):
            decompile(C.invoke(C.id_(), obj_var("x")))


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_decompile_random_translator_output(seed):
    """Anything the forward translator emits decompiles, and the
    decompiled query means the same thing."""
    import random
    from repro.workloads.hidden_join import (HiddenJoinSpec,
                                             hidden_join_family)
    from repro.schema.generator import tiny_database
    rng = random.Random(seed)
    spec = HiddenJoinSpec(depth=rng.randint(1, 4),
                          applicable=rng.random() < 0.8,
                          predicate=rng.choice(("gt", "eq")))
    source = hidden_join_family(spec)
    kola = translate_query(source)
    recovered = decompile(kola)
    db = tiny_database()
    assert aqua_eval(recovered, db) == eval_obj(kola, db)
    assert alpha_equal(recovered, source)


class TestCliDecompile:
    def test_cli(self, capsys):
        from repro.cli import main
        assert main(["decompile",
                     "iterate(Kp(T), city o addr) ! P"]) == 0
        out = capsys.readouterr().out
        assert "app(" in out and "addr.city" in out
