"""Tests for the list extension (Section 6): values, semantics, typing,
rules, and ORDER BY behaviour."""

import pytest

from repro.core import constructors as C
from repro.core.errors import EvalError
from repro.core.eval import apply_fn
from repro.core.lists import KList, as_list, stable_sort_key
from repro.core.parser import parse_fun
from repro.core.pretty import pretty
from repro.core.types import INT, infer, list_t
from repro.core.values import KPair, kset
from repro.larch.checker import RuleChecker
from repro.rules.lists import LIST_RULES, UNSOUND_MAP_LISTIFY


class TestKList:
    def test_order_matters(self):
        assert KList([1, 2]) != KList([2, 1])
        assert KList([1, 2]) == KList([1, 2])

    def test_duplicates_kept(self):
        assert len(KList([1, 1])) == 2

    def test_hashable_and_indexable(self):
        sequence = KList(["a", "b"])
        assert sequence in {sequence}
        assert sequence[1] == "b"
        assert "a" in sequence

    def test_map_filter_concat(self):
        sequence = KList([1, 2, 3])
        assert sequence.map(lambda x: x * 2) == KList([2, 4, 6])
        assert sequence.filter(lambda x: x > 1) == KList([2, 3])
        assert sequence.concat(KList([9])) == KList([1, 2, 3, 9])

    def test_flatten(self):
        nested = KList([KList([1]), KList([2, 3])])
        assert nested.flatten() == KList([1, 2, 3])
        with pytest.raises(EvalError):
            KList([1]).flatten()

    def test_support(self):
        assert KList([1, 1, 2]).support() == kset([1, 2])

    def test_as_list(self):
        with pytest.raises(EvalError, match="expected a list"):
            as_list(kset([1]))


class TestListSemantics:
    def test_listify_orders_numerically(self):
        term = C.listify(C.id_())
        assert apply_fn(term, kset([3, 1, 2])) == KList([1, 2, 3])

    def test_listify_deterministic_ties(self):
        term = C.listify(C.const_f(C.lit(0)))  # all keys equal
        first = apply_fn(term, kset(["b", "a", "c"]))
        second = apply_fn(term, kset(["c", "a", "b"]))
        assert first == second

    def test_listify_mixed_key_types_total(self):
        # a constant-key order over pairs must not raise
        term = C.listify(C.pi1())
        value = kset([KPair(1, "x"), KPair(2, "y")])
        result = apply_fn(term, value)
        assert [p.fst for p in result] == [1, 2]

    def test_order_by_age(self, tiny_db):
        term = C.listify(C.prim("age"))
        ordered = apply_fn(term, tiny_db.collection("P"), tiny_db)
        ages = [person.get("age") for person in ordered]
        assert ages == sorted(ages)

    def test_list_iterate_preserves_order(self):
        term = C.list_iterate(C.curry_p(C.lt(), C.lit(1)),
                              C.pair(C.id_(), C.id_()))
        result = apply_fn(term, KList([3, 2, 5]))
        assert result == KList([KPair(3, 3), KPair(2, 2), KPair(5, 5)])

    def test_list_cat_and_flat(self):
        cat = apply_fn(C.list_cat(), KPair(KList([1]), KList([2])))
        assert cat == KList([1, 2])
        flat = apply_fn(C.list_flat(), KList([KList([1]), KList([2])]))
        assert flat == KList([1, 2])

    def test_to_set(self):
        assert apply_fn(C.to_set(), KList([1, 1, 2])) == kset([1, 2])

    def test_stable_sort_key_total(self):
        keys = [stable_sort_key(k, "e")
                for k in (1, 2.5, "a", True, KPair(1, 2))]
        sorted(keys)  # must not raise


class TestListTyping:
    def test_listify_type(self):
        t = infer(parse_fun("listify(age)"))
        assert t.args[1].name == "List"

    def test_order_by_pipeline(self):
        term = parse_fun("to_set o list_iterate(Kp(T), id) o listify(id)")
        t = infer(term)
        assert t.args[0].name == "Set" and t.args[1].name == "Set"

    def test_list_literal(self):
        assert infer(C.lit(KList([1, 2]))) == list_t(INT)

    def test_round_trip(self):
        text = "to_set o list_iterate(Cp(lt, 3), id) o listify(age)"
        term = parse_fun(text)
        assert parse_fun(pretty(term)) == term


class TestListRules:
    @pytest.mark.parametrize("name", [r.name for r in LIST_RULES])
    def test_rule_sound(self, name):
        one_rule = next(r for r in LIST_RULES if r.name == name)
        report = RuleChecker(trials=80).check(one_rule)
        assert report.passed, report.counterexample.render()

    def test_unsound_map_listify_refuted(self):
        report = RuleChecker(trials=400).check(UNSOUND_MAP_LISTIFY)
        assert not report.passed

    def test_filter_pushed_below_sort(self, rulebase, tiny_db):
        """The ORDER-BY use case: selection moves below the sort."""
        from repro.rewrite.engine import Engine
        query = C.invoke(
            C.compose(C.list_iterate(C.oplus(C.curry_p(C.lt(), C.lit(40)),
                                             C.prim("age")),
                                     C.id_()),
                      C.listify(C.prim("age"))),
            C.setname("P"))
        # directly evaluate both the original and the rewritten form
        engine = Engine()
        rewritten = engine.normalize(query,
                                     [rulebase.get("filter-listify")])
        assert rewritten != query
        from repro.core.eval import eval_obj
        assert eval_obj(rewritten, tiny_db) == eval_obj(query, tiny_db)
