"""Tests for the ``.kpack`` text format: parsing, rendering, errors."""

import pytest

from repro.rewrite.rule import Goal
from repro.rulepacks import (PackFormatError, PackRule, RulePack,
                             parse_pack_text, render_pack)

GOOD = """\
# A comment line.
pack demo
version 3
description "two harmless rules"

rule compose-id
    number 1
    safety exhaustive
    citation "fig. 4"
    groups demo-group
    lhs id o $f
    rhs $f

rule eq-inj
    sort pred
    bidirectional no
    requires injective($f)
    lhs eq @ ($f >< $f)
    rhs eq

group demo-block
    compose-id eq-inj
"""


class TestParse:
    def test_header(self):
        pack = parse_pack_text(GOOD, source="demo.kpack")
        assert pack.name == "demo"
        assert pack.version == 3
        assert pack.description == "two harmless rules"
        assert pack.source == "demo.kpack"

    def test_rules(self):
        pack = parse_pack_text(GOOD)
        assert pack.rule_names() == ("compose-id", "eq-inj")
        first, second = pack.rules
        assert first.number == 1
        assert first.safety == "exhaustive"
        assert first.citation == "fig. 4"
        assert first.groups == ("demo-group",)
        assert first.lhs_text == "id o $f" and first.rhs_text == "$f"
        assert second.sort == "pred"
        assert not second.bidirectional
        assert second.preconditions == (Goal("injective", "f"),)
        assert second.safety == "strategy-only"   # the default

    def test_group_blocks(self):
        pack = parse_pack_text(GOOD)
        assert pack.group_blocks == (
            ("demo-block", ("compose-id", "eq-inj")),)

    def test_group_block_spans_lines(self):
        text = ("pack p\nversion 1\n\nrule r\n    lhs id o $f\n"
                "    rhs $f\n\ngroup g\n    r\n    r\n")
        pack = parse_pack_text(text)
        assert pack.group_blocks == (("g", ("r", "r")),)

    def test_build_constructs_validated_rule(self):
        built = parse_pack_text(GOOD).rules[0].build()
        assert built.name == "compose-id"
        assert built.number == 1
        assert built.bidirectional

    def test_defaults(self):
        pack = parse_pack_text(
            "pack p\nversion 1\nrule r\n    lhs id o $f\n    rhs $f\n")
        decl = pack.rules[0]
        assert decl.sort == "fun" and decl.bidirectional
        assert decl.safety == "strategy-only"
        assert decl.groups == () and decl.preconditions == ()


class TestErrors:
    def _expect(self, text, fragment, line=None):
        with pytest.raises(PackFormatError) as excinfo:
            parse_pack_text(text, source="bad.kpack")
        assert fragment in str(excinfo.value)
        if line is not None:
            assert f"bad.kpack:{line}:" in str(excinfo.value)

    def test_missing_pack_header(self):
        self._expect("version 1\n", "missing 'pack <name>'")

    def test_missing_version(self):
        self._expect("pack p\n", "missing 'version <int>'")

    def test_bad_version(self):
        self._expect("pack p\nversion zero\n", "positive integer", line=2)

    def test_duplicate_rule(self):
        self._expect("pack p\nversion 1\nrule r\n    lhs id\n    rhs id\n"
                     "rule r\n    lhs id\n    rhs id\n",
                     "duplicate rule", line=6)

    def test_rule_missing_side(self):
        self._expect("pack p\nversion 1\nrule r\n    lhs id o $f\n",
                     "missing its rhs", line=3)

    def test_unknown_field(self):
        self._expect("pack p\nversion 1\nrule r\n    wat 3\n",
                     "unknown rule field 'wat'", line=4)

    def test_directive_outside_rule(self):
        self._expect("pack p\nversion 1\nlhs id\n",
                     "unexpected directive", line=3)

    def test_bad_safety(self):
        self._expect("pack p\nversion 1\nrule r\n    safety sometimes\n",
                     "safety wants", line=4)

    def test_bad_bidirectional(self):
        self._expect("pack p\nversion 1\nrule r\n    bidirectional true\n",
                     "bidirectional wants yes|no", line=4)

    def test_bad_requires(self):
        self._expect("pack p\nversion 1\nrule r\n    requires inj f\n",
                     "requires wants", line=4)

    def test_non_json_note(self):
        self._expect("pack p\nversion 1\nrule r\n    note unquoted\n",
                     "JSON string", line=4)

    def test_empty_group_block(self):
        self._expect("pack p\nversion 1\nrule r\n    lhs id\n    rhs id\n"
                     "group g\n", "group block 'g' is empty", line=6)

    def test_duplicate_field(self):
        self._expect("pack p\nversion 1\nrule r\n    sort fun\n"
                     "    sort obj\n", "duplicate 'sort'", line=5)


class TestRoundTrip:
    def test_render_parse_identity(self):
        pack = parse_pack_text(GOOD)
        again = parse_pack_text(render_pack(pack))
        assert again.name == pack.name
        assert again.version == pack.version
        assert again.description == pack.description
        assert again.group_blocks == pack.group_blocks
        # source/line differ; compare the declaration payloads.
        for a, b in zip(pack.rules, again.rules):
            import dataclasses
            strip = lambda d: {k: v for k, v in
                               dataclasses.asdict(d).items() if k != "line"}
            assert strip(a) == strip(b)

    def test_render_is_stable(self):
        pack = parse_pack_text(GOOD)
        once = render_pack(pack)
        assert render_pack(parse_pack_text(once)) == once

    def test_render_programmatic_pack(self):
        pack = RulePack(
            name="mini", version=2,
            rules=(PackRule(name="r", lhs_text="id o $f",
                            rhs_text="$f", safety="exhaustive"),))
        text = render_pack(pack)
        assert "pack mini" in text and "safety exhaustive" in text
        assert parse_pack_text(text).rule_names() == ("r",)
