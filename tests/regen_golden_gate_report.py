"""Regenerate ``tests/golden/gate_report_fig5.json``.

Run only after an *intentional* change to the admission gate or the
fig5 rules, then review the diff:

    PYTHONPATH=src python -m tests.regen_golden_gate_report
"""

import pathlib

from repro.rulepacks import AdmissionGate, load_standard_packs


def main() -> int:
    from tests.test_rulepack_gate import GOLDEN_CONFIG
    fig5 = next(p for p in load_standard_packs() if p.name == "fig5")
    report = AdmissionGate(GOLDEN_CONFIG).check(fig5)
    target = pathlib.Path(__file__).parent / "golden" \
        / "gate_report_fig5.json"
    target.write_text(report.to_json_text(), encoding="utf-8")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
