"""Tests for the closure compiler: compiled evaluation must agree with
the tree-walking evaluator everywhere, and compiled queries must bind
their database at execution time, not compile time."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constructors as C
from repro.core.compile import compile_fn, compile_pred, compile_query
from repro.core.errors import EvalError
from repro.core.eval import apply_fn, eval_obj
from repro.core.eval import test_pred as check_pred
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.types import INT, pair_t, set_t
from repro.core.values import KPair, kset
from repro.larch.gen import TermGenerator


class TestBasicAgreement:
    def test_simple_function(self):
        term = parse_fun("pi1")
        assert compile_fn(term)(KPair(1, 2)) == 1

    def test_composition(self):
        term = parse_fun("pi1 o pi2")
        value = KPair(0, KPair(7, 8))
        assert compile_fn(term)(value) == apply_fn(term, value)

    def test_predicate(self):
        term = parse_pred("Cp(lt, 3) | eq @ <id, Kf(0)>")
        for value in (-1, 0, 3, 5):
            assert compile_pred(term)(value) == check_pred(term, value)

    def test_query(self, tiny_db):
        query = parse_obj("iterate(gt @ <age, Kf(25)>, age) ! P")
        compiled = compile_query(query)
        assert compiled(tiny_db) == eval_obj(query, tiny_db)

    def test_garage_query(self, tiny_db, queries):
        for query in (queries.kg1, queries.kg2):
            assert compile_query(query)(tiny_db) == eval_obj(query,
                                                             tiny_db)

    def test_bag_pipeline(self, tiny_db):
        query = parse_obj(
            "distinct o bag_iterate(Kp(T), city) o bag_flat"
            " o bag_iterate(Kp(T), tobag o grgs) o tobag ! P")
        assert compile_query(query)(tiny_db) == eval_obj(query, tiny_db)

    def test_list_pipeline(self, tiny_db):
        query = parse_obj(
            "to_set o list_iterate(Cp(lt, 40) @ age, id)"
            " o listify(age) ! P")
        assert compile_query(query)(tiny_db) == eval_obj(query, tiny_db)

    def test_aggregates(self, tiny_db):
        query = parse_obj("count o iterate(Kp(T), id) ! P")
        assert compile_query(query)(tiny_db) == eval_obj(query, tiny_db)
        assert compile_fn(parse_fun("plus"))(KPair(3, 4)) == 7

    def test_test_expression(self):
        query = parse_obj("eq ? [1, 1]")
        assert compile_query(query)() is True

    def test_pairobj_query(self, tiny_db):
        query = parse_obj("join(Kp(T), pi1) ! [P, V]")
        assert compile_query(query)(tiny_db) == eval_obj(query, tiny_db)


class TestRetargeting:
    """Database binding happens per run, never at compile time: one
    compiled plan must serve any number of databases."""

    def test_one_plan_two_databases(self, db_pair):
        small, large = db_pair
        query = parse_obj("iterate(gt @ <age, Kf(25)>, city o addr) ! P")
        compiled = compile_query(query)
        assert compiled(small) == eval_obj(query, small)
        assert compiled(large) == eval_obj(query, large)
        # Results genuinely differ across databases — the plan is not
        # accidentally caching its first binding.
        assert eval_obj(parse_obj("count ! P"), small) != eval_obj(
            parse_obj("count ! P"), large)

    def test_fn_db_is_per_callable_not_per_compilation(self, db_pair):
        small, large = db_pair
        term = parse_fun("count o grgs")
        on_small = compile_fn(term, small)
        on_large = compile_fn(term, large)
        person_small = next(iter(small.collection("P")))
        person_large = next(iter(large.collection("P")))
        assert on_small(person_small) == apply_fn(term, person_small, small)
        assert on_large(person_large) == apply_fn(term, person_large, large)


class TestErrors:
    def test_domain_error_preserved(self):
        with pytest.raises(EvalError, match="pair"):
            compile_fn(parse_fun("pi1"))(3)

    def test_needs_database_at_run_time(self, tiny_db):
        # Compiling a db-dependent term succeeds; only *running* it
        # without a database raises — the evaluator's behavior.
        fn = compile_fn(parse_fun("age"))
        with pytest.raises(EvalError, match="database"):
            fn(next(iter(tiny_db.collection("P"))))
        run = compile_query(parse_obj("iterate(Kp(T), id) ! P"))
        with pytest.raises(EvalError, match="database"):
            run()
        assert run(tiny_db) == eval_obj(
            parse_obj("iterate(Kp(T), id) ! P"), tiny_db)

    def test_metavariable_rejected(self):
        from repro.core.terms import fun_var
        with pytest.raises(EvalError):
            compile_fn(fun_var("f"))

    def test_incomparable_values(self):
        with pytest.raises(EvalError, match="incomparable"):
            compile_pred(parse_pred("lt"))(KPair(1, "a"))


_SETTINGS = settings(max_examples=50, deadline=None)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_compiled_fn_agrees_with_evaluator(seed):
    """The core contract, property-tested over random well-typed terms."""
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.function(set_t(INT), set_t(INT))
    value = generator.value(set_t(INT))
    assert compile_fn(term)(value) == apply_fn(term, value)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_compiled_pred_agrees_with_evaluator(seed):
    generator = TermGenerator(seed=seed, max_depth=3)
    term = generator.predicate(pair_t(INT, set_t(INT)))
    value = generator.value(pair_t(INT, set_t(INT)))
    assert compile_pred(term)(value) == check_pred(term, value)


def test_compiled_is_faster_on_iteration(db, queries):
    """Not asserted as a strict bound in CI-like runs, but the compiled
    form must at least not be slower by 2x on the garage query."""
    import time
    compiled = compile_query(queries.kg1)
    compiled(db)  # warm
    start = time.perf_counter()
    for _ in range(3):
        compiled(db)
    compiled_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(3):
        eval_obj(queries.kg1, db)
    interpreted_time = time.perf_counter() - start
    assert compiled_time < interpreted_time * 2
