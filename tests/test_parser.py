"""Unit tests for the KOLA text parser and pretty printer."""

import pytest

from repro.core import constructors as C
from repro.core.errors import ParseError
from repro.core.parser import parse, parse_fun, parse_obj, parse_pred
from repro.core.pretty import pretty, pretty_multiline
from repro.core.terms import Sort, fun_var


class TestFunctionParsing:
    def test_leaves(self):
        assert parse_fun("id") == C.id_()
        assert parse_fun("pi1") == C.pi1()
        assert parse_fun("flat") == C.flat()
        assert parse_fun("union") == C.union()

    def test_schema_prim(self):
        assert parse_fun("age") == C.prim("age")

    def test_compose_right_assoc(self):
        term = parse_fun("a o b o c")
        assert term == C.compose(C.prim("a"),
                                 C.compose(C.prim("b"), C.prim("c")))

    def test_pairing(self):
        assert parse_fun("<id, age>") == C.pair(C.id_(), C.prim("age"))

    def test_cross_infix(self):
        assert parse_fun("id >< cars") == C.cross(C.id_(), C.prim("cars"))

    def test_cross_binds_looser_than_compose(self):
        term = parse_fun("a o b >< c")
        assert term.op == "cross"
        assert term.args[0] == C.compose(C.prim("a"), C.prim("b"))

    def test_formers(self):
        assert parse_fun("Kf(25)") == C.const_f(C.lit(25))
        assert parse_fun("Cf(pi1, 3)") == C.curry_f(C.pi1(), C.lit(3))
        assert (parse_fun("con(eq, pi1, pi2)")
                == C.cond(C.eq(), C.pi1(), C.pi2()))
        assert (parse_fun("iterate(Kp(T), age)")
                == C.iterate(C.const_p(C.true()), C.prim("age")))
        assert parse_fun("nest(pi1, pi2)") == C.nest(C.pi1(), C.pi2())

    def test_not_a_function(self):
        with pytest.raises(ParseError):
            parse_fun("eq")
        with pytest.raises(ParseError):
            parse_fun("Kp(T)")


class TestPredicateParsing:
    def test_leaves(self):
        assert parse_pred("eq") == C.eq()
        assert parse_pred("in") == C.isin()

    def test_oplus_left_assoc(self):
        term = parse_pred("eq @ pi1 @ pi2")
        assert term == C.oplus(C.oplus(C.eq(), C.pi1()), C.pi2())

    def test_oplus_swallows_compose(self):
        term = parse_pred("lt @ age o pi1")
        assert term == C.oplus(C.lt(), C.compose(C.prim("age"), C.pi1()))

    def test_conj_binds_tighter_than_disj(self):
        term = parse_pred("eq & lt | gt")
        assert term.op == "disj"
        assert term.args[0].op == "conj"

    def test_negation(self):
        assert parse_pred("~eq") == C.neg(C.eq())

    def test_inv(self):
        assert parse_pred("inv(gt)") == C.inv(C.gt())

    def test_schema_pred(self):
        assert parse_pred("adult") == C.pprim("adult")


class TestObjectParsing:
    def test_literals(self):
        assert parse_obj("42") == C.lit(42)
        assert parse_obj('"hi"') == C.lit("hi")
        assert parse_obj("T") == C.true()
        assert parse_obj("F") == C.false()
        assert parse_obj("{}") == C.lit(frozenset())
        assert parse_obj("{1, 2}") == C.lit(frozenset({1, 2}))

    def test_setname(self):
        assert parse_obj("P") == C.setname("P")

    def test_pair(self):
        assert parse_obj("[V, P]") == C.pairobj(C.setname("V"),
                                                C.setname("P"))

    def test_invoke(self):
        assert parse_obj("id ! 3") == C.invoke(C.id_(), C.lit(3))

    def test_test(self):
        term = parse_obj("eq ? [1, 1]")
        assert term == C.test(C.eq(), C.pairobj(C.lit(1), C.lit(1)))

    def test_invoke_chains_right(self):
        term = parse_obj("age ! (pi1 ! [x, y])")
        assert term.op == "invoke"

    def test_trailing_junk(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_obj("P Q")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_obj("#")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_fun("")


class TestMetavariables:
    def test_default_sorts_by_context(self):
        term = parse_fun("iterate($p, $f)")
        sorts = dict(term.metavars())
        assert sorts["p"] is Sort.PRED
        assert sorts["f"] is Sort.FUN

    def test_explicit_sort(self):
        term = parse_obj("$x:obj")
        assert ("x", Sort.OBJ) in term.metavars()

    def test_obj_position_default(self):
        term = parse_fun("Kf($B)")
        assert ("B", Sort.OBJ) in term.metavars()

    def test_unknown_sort(self):
        with pytest.raises(ParseError, match="unknown sort"):
            parse_fun("$f:banana")


class TestRoundTrips:
    CASES = [
        (Sort.OBJ, "iterate(Kp(T), city o addr) ! P"),
        (Sort.OBJ, "gt @ <age, Kf(25)> ? p"),
        (Sort.FUN, "nest(pi1, pi2) o (unnest(pi1, pi2) >< id) o "
                   "<join(in @ (id >< cars), (id >< grgs)), pi1>"),
        (Sort.FUN, "con(Cp(leq, 25) @ age, child, Kf({}))"),
        (Sort.PRED, "Cp(leq, 25) @ age & Kp(T)"),
        (Sort.PRED, "~(eq | in) & inv(lt)"),
        (Sort.FUN, "iterate($p, $f) o iterate($q, $g)"),
        (Sort.FUN, "Cf(pi1, \"label\") o (flat >< id)"),
        (Sort.OBJ, "union ! [P, V]"),
    ]

    @pytest.mark.parametrize("sort,text", CASES)
    def test_round_trip(self, sort, text):
        term = parse(text, sort)
        printed = pretty(term)
        assert parse(printed, sort) == term

    def test_multiline_contains_chain(self):
        term = parse_obj("iterate(Kp(T), age) o iterate(Kp(T), id) ! P")
        rendered = pretty_multiline(term)
        assert rendered.count(" o\n") == 1
        assert rendered.endswith("! P")


class TestPrettySpecifics:
    def test_kp_true(self):
        assert pretty(C.const_p(C.true())) == "Kp(T)"

    def test_empty_set(self):
        assert pretty(C.const_f(C.empty_set())) == "Kf({})"

    def test_metavar(self):
        assert pretty(fun_var("f")) == "$f"

    def test_isin_prints_as_in(self):
        assert pretty(C.isin()) == "in"

    def test_chain_flat(self):
        term = C.compose(C.compose(C.prim("a"), C.prim("b")), C.prim("c"))
        assert pretty(term) == "a o b o c"
