"""The type-directed query generator: every output is well-typed,
evaluable, deterministic, canonical, and round-trips through the
pretty-printer — the contracts the differential oracle and the
regression corpus build on."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.errors import EvalError
from repro.core.eval import eval_obj
from repro.core.eval import test_pred as eval_pred
from repro.core.parser import parse_query
from repro.core.pretty import pretty
from repro.core.types import well_typed
from repro.fuzz.generator import (DEFAULT_WEIGHTS, FuzzConfig,
                                  QueryGenerator, generate_queries)
from repro.rewrite.pattern import canon
from repro.schema.paper_schema import paper_schema

SAMPLE = 150  # seeds checked by the exhaustive-ish properties


@pytest.fixture(scope="module")
def schema():
    return paper_schema()


def _ops(term, acc=None):
    acc = set() if acc is None else acc
    acc.add(term.op)
    for arg in term.args:
        _ops(arg, acc)
    return acc


def test_generated_queries_are_well_typed(schema):
    for seed in range(SAMPLE):
        query = QueryGenerator(FuzzConfig(seed=seed)).query()
        assert well_typed(query, schema), (seed, pretty(query))


def test_generated_queries_evaluate(tiny_db):
    """Well-typed by construction *and* total under evaluation: the
    generator closes the ordering soundness gap (comparisons only at
    Int/Str), so direct evaluation never raises."""
    for seed in range(SAMPLE):
        query = QueryGenerator(FuzzConfig(seed=seed)).query()
        try:
            if query.op == "test":
                eval_pred(query.args[0],
                          eval_obj(query.args[1], tiny_db), tiny_db)
            else:
                eval_obj(query, tiny_db)
        except EvalError as error:  # pragma: no cover - failure path
            pytest.fail(f"seed {seed}: {error}: {pretty(query)}")


def test_equal_seeds_equal_streams():
    first = generate_queries(20, seed=7)
    second = generate_queries(20, seed=7)
    assert first == second
    assert generate_queries(20, seed=8) != first


def test_queries_are_canonical_and_round_trip():
    """Corpus persistence stores queries as pretty text, so the text
    must parse back to the *identical* interned term."""
    for seed in range(SAMPLE):
        query = QueryGenerator(FuzzConfig(seed=seed)).query()
        assert canon(query) == query, seed
        assert parse_query(pretty(query)) == query, (seed, pretty(query))


def test_reaches_paper_formers():
    """The tunable weights actually steer shape: across a modest seed
    range the generator reaches the formers the fixed paper-query pool
    never composes freely."""
    seen = set()
    for seed in range(400):
        seen |= _ops(QueryGenerator(FuzzConfig(seed=seed)).query())
    for former in ("join", "nest", "unnest", "iter", "iterate",
                   "oplus", "cond", "curry_f", "count"):
        assert former in seen, former
    # bag/list formers individually need rarer type shapes; the family
    # as a whole must still be reachable
    assert seen & {"tobag", "distinct", "bag_iterate", "bag_flat",
                   "listify", "list_iterate", "to_set", "list_flat"}


def test_weight_steering():
    """Zeroing a former's weight suppresses it; boosting it makes it
    common."""
    none = FuzzConfig(weights={"join": 0.0, "nest": 0.0})
    for seed in range(120):
        assert "join" not in _ops(QueryGenerator(
            replace(none, seed=seed)).query())
    boosted = FuzzConfig(weights={"iterate": 20.0})
    hits = sum("iterate" in _ops(QueryGenerator(
        replace(boosted, seed=seed)).query()) for seed in range(120))
    assert hits > 40


def test_max_depth_bounds_size():
    shallow = [QueryGenerator(FuzzConfig(seed=s, max_depth=1)).query()
               for s in range(60)]
    deep = [QueryGenerator(FuzzConfig(seed=s, max_depth=5)).query()
            for s in range(60)]
    assert (sum(q.size() for q in shallow)
            < sum(q.size() for q in deep))


def test_default_weights_cover_all_keys():
    """Every weight key names a real generator option (guards against
    typo'd steering knobs silently doing nothing)."""
    seen_keys = DEFAULT_WEIGHTS.keys()
    assert {"join", "nest", "unnest", "iter", "chain", "compose",
            "iterate", "const", "cond"} <= set(seen_keys)
