"""Equivalence property: compiled (discrimination-tree) dispatch is
observationally identical to the uncompiled engines.

The compiled matcher (:mod:`repro.rewrite.discrimination`) must be a
pure dispatch shortcut: for every input term, rule group and strategy
it produces the same normal forms, the same derivation step sequences,
the same per-rule fire counts — and only ever *removes* match attempts
without reordering the survivors.  The corpus is the fuzz corpus of
:mod:`tests.test_fuzz_derivations` plus the Figure 4/5/8 derivation
pipelines (the T1K/T2K blocks and the hidden-join untangler).

A retrieval-level oracle additionally checks the trie against
:func:`repro.rewrite.match.match` rule by rule over every subterm of
the corpus: complete trie hits must carry exactly the bindings
``match`` computes, and every direct match must be retrieved.
"""

from __future__ import annotations

import pytest

from repro.coko.hidden_join import hidden_join_blocks
from repro.coko.stdblocks import block_t1k, block_t2k
from repro.rewrite.discrimination import compiled_ruleset
from repro.rewrite.engine import Engine
from repro.rewrite.match import match
from repro.rewrite.pattern import canon
from repro.rewrite.ruleindex import rule_index
from repro.rewrite.trace import Derivation
from repro.workloads.queries import paper_queries

from tests.test_fuzz_derivations import _QUERIES

_MAX_STEPS = 40

_GROUPS = ["simplify", "fig4", "fig5", "fig8", "companions", "structural"]


def _run(engine: Engine, term, rules, strategy):
    derivation = Derivation("equiv")
    engine.stats.reset()
    result = engine.normalize_result(term, rules, max_steps=_MAX_STEPS,
                                     strategy=strategy,
                                     derivation=derivation)
    steps = [(step.rule.name, step.before, step.after, step.path)
             for step in derivation.steps]
    return result, steps, dict(engine.stats.per_rule)


def _is_subsequence(shorter: list, longer: list) -> bool:
    it = iter(longer)
    return all(item in it for item in shorter)


def _subterms(term):
    seen = set()
    stack = [canon(term)]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.args)
    return seen


@pytest.mark.parametrize("strategy", ["topdown", "bottomup"])
@pytest.mark.parametrize("group", _GROUPS)
def test_compiled_engine_matches_uncompiled(group, strategy, rulebase):
    """Same results, derivations and fire counts — per group, per
    strategy, across the whole fuzz corpus, against both the PR 1
    head-indexed engine and the reference linear engine."""
    rules = rulebase.group(group)
    compiled = Engine()                                  # discrimination tree
    indexed = Engine(compiled=False)                     # PR 1 engine
    linear = Engine(indexed=False, incremental=False)    # reference

    for query in _QUERIES:
        c_result, c_steps, c_counts = _run(compiled, query, rules,
                                           strategy)
        i_result, i_steps, i_counts = _run(indexed, query, rules,
                                           strategy)
        l_result, l_steps, l_counts = _run(linear, query, rules,
                                           strategy)
        # interning makes "same term" an identity check
        assert c_result.term is i_result.term is l_result.term
        assert c_result.steps_used == i_result.steps_used \
            == l_result.steps_used
        assert c_result.reached_fixpoint == i_result.reached_fixpoint \
            == l_result.reached_fixpoint
        assert c_steps == i_steps == l_steps
        assert c_counts == i_counts == l_counts


def test_compiled_attempt_order_is_a_subsequence(rulebase):
    """Compiled dispatch only *removes* match attempts; the attempts it
    does make happen in exactly the uncompiled engine's order."""
    for group in _GROUPS:
        rules = rulebase.group(group)
        compiled = Engine(nf_cache=False)
        indexed = Engine(compiled=False)
        compiled.stats.attempt_log = []
        indexed.stats.attempt_log = []
        for query in _QUERIES:
            compiled.stats.reset()
            indexed.stats.reset()
            compiled.normalize_result(query, rules, max_steps=_MAX_STEPS)
            indexed.normalize_result(query, rules, max_steps=_MAX_STEPS)
            assert len(compiled.stats.attempt_log) \
                <= len(indexed.stats.attempt_log)
            assert _is_subsequence(compiled.stats.attempt_log,
                                   indexed.stats.attempt_log), (
                f"attempt order diverged on group {group!r}")


def _run_figure_pipeline(engine, rulebase):
    """The Figure 4 blocks (T1K, T2K) and the Figure 8 hidden-join
    untangler, all through one engine, recording every step."""
    queries = paper_queries()
    derivation = Derivation("figures")
    outputs = [
        block_t1k().transform(queries.t1k_source, rulebase, engine,
                              derivation),
        block_t2k().transform(queries.t2k_source, rulebase, engine,
                              derivation),
    ]
    for query in (queries.kg1, queries.k4):
        term = engine.normalize(query, rulebase.group("simplify"),
                                derivation=derivation)
        for block in hidden_join_blocks():
            term = block.transform(term, rulebase, engine, derivation)
        outputs.append(term)
    steps = [(step.rule.name, step.before, step.after, step.path)
             for step in derivation.steps]
    return outputs, steps


def test_figure_derivations_identical(rulebase):
    """The paper's derivation pipelines replay step-for-step identically
    under compiled and uncompiled dispatch."""
    compiled_out, compiled_steps = _run_figure_pipeline(Engine(),
                                                       rulebase)
    indexed_out, indexed_steps = _run_figure_pipeline(
        Engine(compiled=False), rulebase)
    linear_out, linear_steps = _run_figure_pipeline(
        Engine(indexed=False, incremental=False), rulebase)
    for fast, mid, slow in zip(compiled_out, indexed_out, linear_out):
        assert fast is mid is slow
    assert compiled_steps == indexed_steps == linear_steps


def test_trie_retrieval_matches_match_oracle(rulebase):
    """Retrieval-level oracle: over every subterm of the corpus and
    every rule of the full pool, the trie's complete hits carry exactly
    the bindings ``match`` computes, and no direct match is missed."""
    rules = tuple(rulebase.all_rules())
    compiled = compiled_ruleset(rule_index(rules))
    nodes = set()
    engine = Engine()
    for query in _QUERIES:
        nodes |= _subterms(query)
        # every intermediate form of the derivations too — the terms
        # dispatch actually sees mid-rewrite
        for group in ("simplify", "fig4", "fig8"):
            derivation = Derivation("oracle")
            engine.normalize_result(query, rulebase.group(group),
                                    max_steps=_MAX_STEPS,
                                    derivation=derivation)
            for step in derivation.steps:
                nodes |= _subterms(step.after)
    checked = 0
    for node in nodes:
        hits = {position: bindings
                for position, _, bindings in compiled.retrieve(node)}
        for position, one_rule in enumerate(compiled.rules):
            expected = match(one_rule.lhs, node)
            if expected is not None:
                assert position in hits, (
                    f"trie missed rule {one_rule.name} on {node!r}")
                got = hits[position]
                # None marks an incomplete candidate the engine
                # completes via match() — any bindings are acceptable.
                assert got is None or got == expected
                checked += 1
            elif position in hits:
                # A retrieval the oracle rejects must be incomplete
                # (the match() fallback then rejects it too).
                assert hits[position] is None
    assert checked > 50  # the corpus genuinely exercises the trie


def test_nf_cache_is_transparent(rulebase):
    """A normal-form cache hit replays the same result, derivation and
    fire counts as the original run."""
    rules = rulebase.group_compiled("simplify")
    engine = Engine()
    for query in _QUERIES:
        engine.stats.reset()
        first_derivation = Derivation("first")
        first = engine.normalize_result(query, rules,
                                        max_steps=_MAX_STEPS,
                                        derivation=first_derivation)
        first_counts = dict(engine.stats.per_rule)

        engine.stats.reset()
        second_derivation = Derivation("second")
        second = engine.normalize_result(query, rules,
                                         max_steps=_MAX_STEPS,
                                         derivation=second_derivation)
        if first.reached_fixpoint:
            assert engine.stats.nf_cache_hits == 1
        assert second.term is first.term
        assert second.steps_used == first.steps_used
        assert second.reached_fixpoint == first.reached_fixpoint
        assert dict(engine.stats.per_rule) == first_counts
        assert [(s.rule.name, s.before, s.after, s.path)
                for s in second_derivation.steps] \
            == [(s.rule.name, s.before, s.after, s.path)
                for s in first_derivation.steps]


def test_nf_cache_invalidated_by_group_generation(rulebase):
    """Mutating a group recompiles it under a fresh generation, so
    cached normal forms keyed on the old generation can never be
    served for the new pool."""
    from repro.rewrite.rulebase import RuleBase

    base = RuleBase()
    for one_rule in rulebase.group("simplify"):
        base.add(one_rule, ["g"])
    before = base.group_compiled("g")
    generation_before = base.group_generation("g")

    engine = Engine()
    query = _QUERIES[0]
    engine.normalize_result(query, base.group_compiled("g"),
                            max_steps=_MAX_STEPS)
    assert engine.stats.nf_cache_misses == 1

    extra = rulebase.group("structural")[0]
    base.add(extra, ["g"])
    after = base.group_compiled("g")
    assert base.group_generation("g") > generation_before
    assert after is not before
    assert after.generation != before.generation

    engine.normalize_result(query, base.group_compiled("g"),
                            max_steps=_MAX_STEPS)
    # the second run keyed on the new generation: miss, not stale hit
    assert engine.stats.nf_cache_hits == 0
    assert engine.stats.nf_cache_misses == 2


def test_prover_successors_order_preserved(rulebase):
    """The engine's pooled successor enumeration returns exactly the
    per-rule ``rewrite_everywhere`` results, in rule-major order."""
    rules = rulebase.group("fig4")
    compiled = Engine()
    reference = Engine(compiled=False)
    for query in _QUERIES:
        pooled = compiled.successors(query, tuple(rules))
        per_rule = []
        for one_rule in rules:
            per_rule.extend(reference.rewrite_everywhere(query, one_rule))
        assert [(r.rule.name, r.term, r.path) for r in pooled] \
            == [(r.rule.name, r.term, r.path) for r in per_rule]
