"""Tests for the optimizer: cost model, plan recognition/execution, the
monolithic baseline, and the end-to-end pipeline."""

import pytest

from repro.aqua.eval import aqua_eval
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.optimizer.cost import CostModel, estimate_cost
from repro.optimizer.monolithic import MonolithicHiddenJoinRule
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.physical import (InterpretPlan, JoinNestPlan,
                                      recognize_join_nest)
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import (HiddenJoinSpec, garage_shape,
                                         hidden_join_family)


@pytest.fixture(scope="module")
def optimizer(rulebase):
    return Optimizer(rulebase)


class TestCostModel:
    def test_nested_form_costs_quadratic(self, queries, db):
        """KG1 (nested loops) should be estimated far above KG2's
        specialized plan."""
        nested_cost = estimate_cost(queries.kg1, db)
        plan = recognize_join_nest(queries.kg2)
        assert plan is not None
        join_cost = plan.cost_estimate(db)
        assert join_cost < nested_cost

    def test_iterate_scales_with_input(self, db):
        small = estimate_cost(parse_obj("iterate(Kp(T), age) ! A"), db)
        large = estimate_cost(parse_obj("iterate(Kp(T), age) ! P"), db)
        assert large > small

    def test_selectivity_configurable(self, queries, db):
        tight = CostModel(selectivity=0.01)
        loose = CostModel(selectivity=0.99)
        plan = recognize_join_nest(queries.kg2)
        assert (plan.cost_estimate(db, tight)
                < plan.cost_estimate(db, loose))


class TestPlanRecognition:
    def test_kg2_recognized_with_membership(self, queries):
        plan = recognize_join_nest(queries.kg2)
        assert isinstance(plan, JoinNestPlan)
        assert plan.unnest_count == 1
        assert plan.membership_fn is not None
        assert "MembershipHashJoin" in plan.explain()

    def test_kg1_not_recognized(self, queries):
        assert recognize_join_nest(queries.kg1) is None

    def test_non_membership_join_recognized(self, rulebase, tiny_db):
        from repro.coko.hidden_join import untangle
        query = translate_query(hidden_join_family(HiddenJoinSpec(depth=1)))
        final, _ = untangle(query, rulebase)
        plan = recognize_join_nest(final)
        assert plan is not None
        assert plan.membership_fn is None
        assert "NestedLoopJoin" in plan.explain()

    def test_arbitrary_query_not_recognized(self):
        assert recognize_join_nest(parse_obj("iterate(Kp(T), age) ! P")) \
            is None


class TestPlanExecution:
    def test_join_plan_agrees_with_interpreter(self, queries, db_pair):
        plan = recognize_join_nest(queries.kg2)
        for database in db_pair:
            assert (plan.execute(database)
                    == eval_obj(queries.kg2, database))

    def test_interpret_plan(self, queries, tiny_db):
        plan = InterpretPlan(queries.kg1)
        assert plan.execute(tiny_db) == eval_obj(queries.kg1, tiny_db)
        assert "Interpret" in plan.explain()

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depth_family_plans_agree(self, rulebase, tiny_db, depth):
        from repro.coko.hidden_join import untangle
        aqua = hidden_join_family(HiddenJoinSpec(depth=depth))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        assert plan.execute(tiny_db) == aqua_eval(aqua, tiny_db)


class TestEndToEnd:
    def test_oql_text_to_plan(self, optimizer, db):
        oq = optimizer.optimize(
            "select p.addr.city from p in P where p.age > 25", db)
        result = oq.execute(db)
        expected = frozenset(
            p.get("addr").get("city") for p in db.collection("P")
            if p.get("age") > 25)
        assert result == expected

    def test_garage_gets_join_plan(self, optimizer, db, queries):
        oq = optimizer.optimize(queries.garage_aqua, db)
        assert isinstance(oq.plan, JoinNestPlan)
        assert oq.untangled == queries.kg2
        assert oq.execute(db) == aqua_eval(queries.garage_aqua, db)

    def test_kola_term_input(self, optimizer, db, queries):
        oq = optimizer.optimize(queries.kg1, db)
        assert oq.untangled == queries.kg2

    def test_explain_readable(self, optimizer, db, queries):
        oq = optimizer.optimize(queries.garage_aqua, db)
        text = oq.explain()
        assert "MembershipHashJoin" in text
        assert "est. cost" in text

    def test_derivation_justified(self, optimizer, db, queries):
        oq = optimizer.optimize(queries.garage_aqua, db)
        assert "[19]" in oq.derivation.rules_used()

    def test_unsupported_input(self, optimizer):
        with pytest.raises(TypeError):
            optimizer.optimize(42)

    def test_without_db_prefers_join_plan(self, optimizer, queries):
        oq = optimizer.optimize(queries.garage_aqua)
        assert isinstance(oq.plan, JoinNestPlan)


class TestMonolithicRule:
    def test_fires_on_garage(self, rulebase, queries):
        rule = MonolithicHiddenJoinRule(rulebase)
        result = rule.apply(queries.kg1)
        assert result == queries.kg2

    def test_head_evidence(self, rulebase, queries):
        rule = MonolithicHiddenJoinRule(rulebase)
        evidence = rule.head(queries.kg1)
        assert evidence is not None
        assert evidence["depth"] == 2
        assert evidence["bottom"].label == "P"

    def test_rejects_derived_bottom_set(self, rulebase):
        """The paper's inapplicability case: the inner query runs over a
        set derived from the outer variable, not a named set."""
        rule = MonolithicHiddenJoinRule(rulebase)
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=2, applicable=False)))
        assert rule.head(query) is None

    def test_rejection_leaves_query_unchanged(self, rulebase):
        """'Complex rules do not simplify queries' — after a failed
        monolithic match the query is exactly as before."""
        rule = MonolithicHiddenJoinRule(rulebase)
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=3, applicable=False)))
        assert rule.apply(query) is None  # and `query` is untouched

    def test_dive_cost_grows_with_depth(self, rulebase):
        """The diving head routine inspects more nodes at greater
        nesting depth, even when it ultimately rejects."""
        rule = MonolithicHiddenJoinRule(rulebase)
        costs = []
        for depth in (1, 3, 5):
            query = translate_query(hidden_join_family(
                HiddenJoinSpec(depth=depth, applicable=False)))
            rule.reset_stats()
            rule.head(query)
            costs.append(rule.nodes_inspected)
        assert costs[0] < costs[1] < costs[2]

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_agrees_with_gradual_pipeline(self, rulebase, depth):
        from repro.coko.hidden_join import untangle
        rule = MonolithicHiddenJoinRule(rulebase)
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth)))
        monolithic = rule.apply(query)
        gradual, _ = untangle(query, rulebase)
        assert monolithic == gradual
