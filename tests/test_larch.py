"""Tests for the Larch-substitute generator and checker themselves."""

import pytest

from repro.core.eval import apply_fn
from repro.core.eval import test_pred as check_pred
from repro.core.terms import Sort
from repro.core.types import (BOOL, INT, STR, TCon, TVar, fun_t, pair_t,
                              set_t)
from repro.larch.checker import RuleChecker
from repro.larch.gen import GenerationError, TermGenerator, ground_type
from repro.rewrite.rule import rule


class TestGroundType:
    def test_concrete_unchanged(self):
        import random
        rng = random.Random(0)
        assert ground_type(INT, rng) == INT
        assert ground_type(set_t(STR), rng) == set_t(STR)

    def test_variables_filled(self):
        import random
        rng = random.Random(0)
        t = ground_type(fun_t(TVar(1), TVar(2)), rng)
        assert isinstance(t, TCon)
        for arg in t.args:
            assert isinstance(arg, TCon)

    def test_deterministic_per_rng_state(self):
        import random
        a = ground_type(TVar(1), random.Random(42))
        b = ground_type(TVar(1), random.Random(42))
        assert a == b


class TestTermGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_functions_are_well_typed_and_runnable(self, seed):
        generator = TermGenerator(seed=seed)
        domain, codomain = pair_t(INT, INT), set_t(INT)
        term = generator.function(domain, codomain)
        result = apply_fn(term, generator.value(domain))
        assert isinstance(result, frozenset)

    @pytest.mark.parametrize("seed", range(8))
    def test_predicates_are_boolean(self, seed):
        generator = TermGenerator(seed=seed)
        domain = pair_t(INT, set_t(INT))
        term = generator.predicate(domain)
        assert isinstance(check_pred(term, generator.value(domain)), bool)

    def test_values_match_types(self):
        generator = TermGenerator(seed=3)
        assert isinstance(generator.value(INT), int)
        assert isinstance(generator.value(STR), str)
        assert isinstance(generator.value(BOOL), bool)
        assert isinstance(generator.value(set_t(INT)), frozenset)
        pair_value = generator.value(pair_t(INT, STR))
        assert isinstance(pair_value.fst, int)
        assert isinstance(pair_value.snd, str)

    def test_unknown_type_rejected(self):
        with pytest.raises(GenerationError):
            TermGenerator().value(TCon("Martian"))

    def test_reproducible(self):
        a = TermGenerator(seed=5).function(INT, INT)
        b = TermGenerator(seed=5).function(INT, INT)
        assert a == b

    def test_injective_function(self):
        generator = TermGenerator(seed=1)
        term = generator.injective_function(INT, INT)
        seen = {}
        for value in range(-5, 6):
            image = apply_fn(term, value)
            assert image not in seen or seen[image] == value
            seen[image] = value

    def test_injective_pairing(self):
        generator = TermGenerator(seed=1)
        term = generator.injective_function(INT, pair_t(INT, STR))
        outputs = {apply_fn(term, v) for v in range(10)}
        assert len(outputs) == 10

    def test_injective_impossible(self):
        with pytest.raises(GenerationError):
            TermGenerator().injective_function(pair_t(INT, INT), BOOL)


class TestChecker:
    def test_sound_rule_passes(self):
        report = RuleChecker(trials=50).check(rule("ok", "id o $f", "$f"))
        assert report.passed
        assert report.trials == 50

    def test_unsound_rule_fails_with_counterexample(self):
        bad = rule("swap", "pi1 o <$f, $g>", "$g", bidirectional=False)
        report = RuleChecker(trials=200).check(bad)
        assert not report.passed
        example = report.counterexample
        assert example is not None
        rendered = example.render()
        assert "$f" in rendered and "lhs" in rendered

    def test_object_rule_checked(self):
        ok = rule("obj-ok", "id ! $x", "$x", sort=Sort.OBJ,
                  bidirectional=False)
        assert RuleChecker(trials=30).check(ok).passed

    def test_deterministic(self):
        bad = rule("swap2", "pi1 o <$f, $g>", "$g", bidirectional=False)
        a = RuleChecker(trials=200, seed=1).check(bad)
        b = RuleChecker(trials=200, seed=1).check(bad)
        assert a.trials == b.trials  # same first counterexample position

    def test_conditional_rule_uses_injective_instantiation(self):
        from repro.rewrite.rule import Goal
        conditional = rule(
            "inj-eq", "eq @ ($f >< $f)", "eq", sort=Sort.PRED,
            preconditions=(Goal("injective", "f"),), bidirectional=False)
        report = RuleChecker(trials=80).check(conditional)
        assert report.passed
        # without the injectivity bias the same equation must be refutable
        unconditional = rule("noninj-eq", "eq @ ($f >< $f)", "eq",
                             sort=Sort.PRED, bidirectional=False)
        assert not RuleChecker(trials=300).check(unconditional).passed
