"""Additional pretty-printer and trace-rendering coverage."""

import pytest

from repro.core import constructors as C
from repro.core.bags import KBag
from repro.core.lists import KList
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.pretty import pretty, pretty_multiline
from repro.core.values import KPair


class TestLiteralRendering:
    def test_booleans(self):
        assert pretty(C.lit(True)) == "T"
        assert pretty(C.lit(False)) == "F"

    def test_strings_double_quoted(self):
        assert pretty(C.lit("hi")) == '"hi"'

    def test_negative_numbers(self):
        assert pretty(C.lit(-3)) == "-3"
        assert parse_obj(pretty(C.lit(-3))) == C.lit(-3)

    def test_pair_values_in_sets(self):
        literal = C.lit(frozenset({KPair(1, 2)}))
        assert pretty(literal) == "{[1, 2]}"
        assert parse_obj(pretty(literal)) == literal

    def test_nested_sets(self):
        literal = C.lit(frozenset({frozenset({1})}))
        assert parse_obj(pretty(literal)) == literal

    def test_bools_in_sets(self):
        literal = C.lit(frozenset({True}))
        assert pretty(literal) == "{T}"
        assert parse_obj(pretty(literal)) == literal


class TestPrecedenceRendering:
    def test_disj_of_conj_no_parens_needed(self):
        term = parse_pred("eq & lt | gt")
        assert pretty(term) == "eq & lt | gt"

    def test_conj_of_disj_parenthesized(self):
        term = C.conj(C.disj(C.eq(), C.lt()), C.gt())
        rendered = pretty(term)
        assert parse_pred(rendered) == term
        assert "(" in rendered

    def test_oplus_left_assoc_renders_flat(self):
        term = parse_pred("eq @ pi1 @ pi2")
        assert parse_pred(pretty(term)) == term

    def test_nested_negation(self):
        term = parse_pred("~(~eq)")
        assert parse_pred(pretty(term)) == term

    def test_cross_of_chains(self):
        term = parse_fun("(a o b >< c o d)")
        assert parse_fun(pretty(term)) == term

    def test_invoke_precedence(self):
        query = parse_obj("iterate(Kp(T), age) o flat ! P")
        rendered = pretty(query)
        assert rendered.endswith("! P")
        assert parse_obj(rendered) == query


class TestMultiline:
    def test_single_factor_no_chain(self):
        term = parse_fun("iterate(Kp(T), age)")
        assert pretty_multiline(term) == pretty(term)

    def test_indent(self):
        term = parse_fun("flat o iterate(Kp(T), age)")
        rendered = pretty_multiline(term, indent=1)
        assert rendered.startswith("  flat")

    def test_query_layout(self, queries):
        rendered = pretty_multiline(queries.kg2)
        lines = rendered.splitlines()
        assert lines[0] == "nest(pi1, pi2) o"
        assert lines[-1] == "! [V, P]"


class TestValueReprExtras:
    def test_bag_repr_deterministic(self):
        assert repr(KBag.of([2, 1, 1])) == repr(KBag.of([1, 2, 1]))

    def test_list_repr_ordered(self):
        assert repr(KList([2, 1])) == "List[2, 1]"
