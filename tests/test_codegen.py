"""The codegen kernel backend: source emission, parameter-slot
families, the skeleton-keyed kernel cache, and its integrations.

Organized by the guarantees the backend makes:

* **result identity** — a compiled kernel returns exactly what the
  fused pipeline (and direct evaluation) returns, including on the
  columnar fast path (the bulk property sweep lives in
  ``test_exec_property.py``; here are the targeted shapes);
* **message parity** — a query that fails, fails with *the same*
  ``EvalError`` message through the kernel as through the fused
  backend (the fused backend is the reference: it and direct eval
  already differ on scan-coercion contexts by design);
* **db-late compilation** — one kernel retargets across databases and
  refuses database-dependent work without one;
* **parameter families** — a kernel compiled from a constant-abstracted
  skeleton serves every member of the template family via run-time
  parameter values, and the optimizer's kernel cache exploits that;
* **integration** — backend dispatch, the batch wire, and the CLI.
"""

import pytest

from repro.cli import main
from repro.core import constructors as C
from repro.core.errors import EvalError
from repro.core.eval import eval_obj
from repro.core.parser import parse_obj
from repro.core.terms import Term, abstract_constants, instantiate_constants
from repro.exec import compile_executable, compile_kernel
from repro.exec import columnar as columnar_mod
from repro.exec import ir
from repro.optimizer.optimizer import BACKENDS, Optimizer
from repro.optimizer.physical import CodegenPlan
from repro.parallel.portable import decode_plan, encode_plan
from repro.rewrite.pattern import canon
from repro.rules.registry import standard_rulebase
from repro.schema.generator import tiny_database

DB = tiny_database()


def _q(text):
    return canon(parse_obj(text))


def _error(run):
    with pytest.raises(EvalError) as info:
        run()
    return str(info.value)


# -- result identity ----------------------------------------------------------


class TestResultIdentity:
    QUERIES = [
        "iterate(gt @ <age, Kf(30)>, id) ! P",
        "listify(age) ! P",
        "ssum o iterate(Kp(T), age) ! P",
        "count ! P",
        "nest(pi1, pi2) o (unnest(pi1, pi2) >< id) o "
        "<join(in @ (id >< cars), (id >< grgs)), pi1> ! [V, P]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("columnar", [False, True])
    def test_matches_fused_and_eval(self, text, columnar):
        query = _q(text)
        expected = eval_obj(query, DB)
        fused = compile_executable(query, columnar=columnar).run(DB)
        kernel = compile_kernel(query, columnar=columnar)
        got = kernel.run(DB)
        assert type(got) is type(expected) and got == expected
        assert type(got) is type(fused) and got == fused

    def test_sort_from_column(self):
        """A leading attr-keyed Sort is served from the cached column
        (the bag/list scan-prefix extension) with identical ordering."""
        query = _q("listify(age) ! P")
        kernel = compile_kernel(query, columnar=True)
        assert "_scan_column" in kernel.source
        assert kernel.run(DB) == eval_obj(query, DB)

    def test_repr_and_explain(self):
        kernel = compile_kernel(_q("count ! P"))
        assert "CompiledKernel" in repr(kernel)
        assert "Scan[P" in kernel.explain()
        assert kernel.fully_lowered


# -- message parity with the fused backend ------------------------------------


def _swap_zero_for(term, value):
    if term.op == "lit" and term.label == 0:
        return C.lit(value)
    if not term.args:
        return term
    return Term(term.op, tuple(_swap_zero_for(arg, value)
                               for arg in term.args), term.label)


class TestMessageParity:
    ERROR_QUERIES = [
        "flat ! P",                            # flat over non-set members
        "ssum ! P",                            # ssum over non-numbers
        "iterate(lt @ <id, Kf(3)>, id) ! P",   # incomparable compare
        "plus ! 3",                            # plus over a non-pair
    ]

    @pytest.mark.parametrize("text", ERROR_QUERIES)
    @pytest.mark.parametrize("columnar", [False, True])
    def test_same_message_as_fused(self, text, columnar):
        query = _q(text)
        expected = _error(
            lambda: compile_executable(query, columnar=columnar).run(DB))
        got = _error(
            lambda: compile_kernel(query, columnar=columnar).run(DB))
        assert got == expected

    @pytest.mark.parametrize("columnar", [False, True])
    def test_string_constant_over_numeric_column(self, columnar):
        """The columnar path must surface the same incomparable-values
        error the scalar path does (the vectorized mask attempt folds
        its TypeError into a scalar fallback, never a silent drop)."""
        query = canon(_swap_zero_for(
            parse_obj("iterate(gt @ <age, Kf(0)>, id) ! P"), "x"))
        expected = _error(
            lambda: compile_executable(query, columnar=columnar).run(DB))
        got = _error(
            lambda: compile_kernel(query, columnar=columnar).run(DB))
        assert got == expected
        assert "incomparable values" in got


# -- db-late compilation ------------------------------------------------------


class TestRetargeting:
    def test_one_kernel_many_databases(self):
        query = _q("iterate(gt @ <age, Kf(40)>, id) ! P")
        kernel = compile_kernel(query)
        other = tiny_database(seed=91)
        assert kernel.run(DB) == eval_obj(query, DB)
        assert kernel.run(other) == eval_obj(query, other)

    def test_no_database_is_a_clean_error(self):
        kernel = compile_kernel(_q("count ! P"))
        message = _error(lambda: kernel.run(None))
        assert "needs a database" in message

    def test_database_free_query_runs_without_db(self):
        kernel = compile_kernel(_q("plus ! [2, 3]"))
        assert kernel.run(None) == 5


# -- parameter families -------------------------------------------------------


class TestParameterFamilies:
    def test_one_kernel_serves_the_family(self):
        template = "iterate(gt @ <age, Kf({c})>, id) ! P"
        skeleton, _ = abstract_constants(_q(template.format(c=30)))
        kernel = compile_kernel(skeleton)
        assert kernel.n_params == 1
        for cutoff in (20, 30, 45):
            concrete = _q(template.format(c=cutoff))
            assert kernel.run(DB, (cutoff,)) == eval_obj(concrete, DB)

    def test_instantiation_round_trip(self):
        term = _q("iterate(gt @ <age, Kf(33)>, id) ! P")
        skeleton, values = abstract_constants(term)
        assert instantiate_constants(skeleton, values) is term
        assert (compile_kernel(skeleton).run(DB, values)
                == compile_kernel(term).run(DB))

    def test_wrong_arity_is_an_eval_error(self):
        skeleton, _ = abstract_constants(
            _q("iterate(gt @ <age, Kf(30)>, id) ! P"))
        kernel = compile_kernel(skeleton)
        message = _error(lambda: kernel.run(DB, ()))
        assert "parameter value(s)" in message


# -- the optimizer's skeleton-keyed kernel cache ------------------------------


class TestKernelCache:
    def _family(self, n=3, start=25):
        return [_q(f"iterate(gt @ <age, Kf({start + i})>, id) ! P")
                for i in range(n)]

    def test_family_hits_one_compiled_kernel(self):
        opt = Optimizer()
        for query in self._family(n=3):
            expected = eval_obj(query, DB)
            assert opt.execute(query, DB, backend="codegen") == expected
        info = opt.plan_cache_info()["kernel"]
        assert info["kernel_misses"] == 1
        assert info["kernel_hits"] == 2
        assert info["size"] == 1

    def test_columnar_flag_keys_separately(self):
        opt = Optimizer()
        query = self._family(n=1)[0]
        opt.execute(query, DB, backend="codegen")
        opt.execute(query, DB, backend="codegen-columnar")
        assert opt.plan_cache_info()["kernel"]["kernel_misses"] == 2

    def test_generation_bump_invalidates(self):
        base = standard_rulebase()
        opt = Optimizer(base)
        query = self._family(n=1)[0]
        opt.execute(query, DB, backend="codegen")
        base.extend_group("scratch-codegen", ["r18"])  # bumps generation
        opt.execute(query, DB, backend="codegen")
        info = opt.plan_cache_info()["kernel"]
        assert info["kernel_misses"] == 2 and info["kernel_hits"] == 0

    def test_clear_drops_kernels_keeps_counters(self):
        opt = Optimizer()
        opt.execute(self._family(n=1)[0], DB, backend="codegen")
        opt.clear_plan_cache()
        info = opt.plan_cache_info()["kernel"]
        assert info["size"] == 0
        assert info["kernel_misses"] == 1

    def test_exact_keying_without_abstract_cache(self):
        opt = Optimizer(abstract_cache=False)
        for query in self._family(n=2):
            opt.execute(query, DB, backend="codegen")
        info = opt.plan_cache_info()["kernel"]
        assert info["kernel_misses"] == 2 and info["kernel_hits"] == 0

    def test_kernel_for_returns_runnable_pair(self):
        opt = Optimizer()
        query = self._family(n=1)[0]
        result = opt.optimize(query, DB)
        kernel, values = opt.kernel_for(result, DB)
        assert kernel.run(DB, values) == eval_obj(query, DB)


# -- backend dispatch ---------------------------------------------------------


class TestBackendDispatch:
    def test_all_backends_agree(self):
        opt = Optimizer()
        result = opt.optimize(
            "select p from p in P where p.age > 30", DB)
        values = {backend: result.execute(DB, backend=backend)
                  for backend in BACKENDS}
        reference = values["plan"]
        assert all(v == reference for v in values.values())

    def test_unknown_backend_names_the_choices(self):
        opt = Optimizer()
        result = opt.optimize("select p from p in P", DB)
        with pytest.raises(ValueError, match="codegen-columnar"):
            result.execute(DB, backend="vectorized")

    def test_result_kernel_is_cached(self):
        result = Optimizer().optimize("select p from p in P", DB)
        assert result.kernel() is result.kernel()
        assert result.kernel(columnar=True) is not result.kernel()


# -- the batch wire -----------------------------------------------------------


class TestWire:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_codegen_plan_round_trips_as_term_payload(self, columnar):
        best = Optimizer().optimize(
            "select p from p in P where p.age > 30", DB).best_term
        plan = CodegenPlan(query=best, columnar=columnar)
        tag, body = encode_plan(plan)
        assert tag == "codegen"
        # Term-only payload: no code objects, closures, or kernels.
        assert set(body) == {"query", "columnar"}
        rebuilt = decode_plan((tag, body))
        assert isinstance(rebuilt, CodegenPlan)
        assert rebuilt.columnar is columnar
        assert rebuilt.execute(DB) == plan.execute(DB)
        assert "Codegen[" in rebuilt.explain()


# -- the CLI ------------------------------------------------------------------


class TestCli:
    def test_run_codegen_backend(self, capsys):
        assert main(["run", "select p from p in P where p.age > 30",
                     "--backend", "codegen"]) == 0
        out = capsys.readouterr().out
        assert "backend  : codegen" in out
        assert "pipeline : fully lowered" in out

    def test_dump_kernel_prints_source(self, capsys):
        assert main(["run", "select p from p in P where p.age > 30",
                     "--backend", "codegen-columnar",
                     "--dump-kernel"]) == 0
        out = capsys.readouterr().out
        assert "def _kernel(db, _params, _cl):" in out

    def test_dump_kernel_needs_codegen_backend(self, capsys):
        assert main(["run", "select p from p in P",
                     "--backend", "fused", "--dump-kernel"]) == 0
        assert "--dump-kernel needs" in capsys.readouterr().out

    def test_explain_codegen(self, capsys):
        assert main(["run", "select p from p in P where p.age > 30",
                     "--backend", "codegen", "--explain"]) == 0
        assert "Scan[P" in capsys.readouterr().out


# -- satellites: slots and the bounded column cache ---------------------------


class TestSlots:
    def test_ir_nodes_have_no_dict(self):
        nodes = [ir.Scan(C.setname("P"), "set"), ir.Map(C.id_()),
                 ir.Filter(C.true()), ir.Dedup(), ir.Sort(C.id_())]
        for node in nodes:
            assert not hasattr(node, "__dict__"), type(node).__name__

    def test_kernel_has_slots(self):
        kernel = compile_kernel(_q("count ! P"))
        assert not hasattr(kernel, "__dict__")


class TestColumnCacheBound:
    def test_lru_eviction_at_cap(self, monkeypatch):
        monkeypatch.setattr(columnar_mod, "COLUMN_CACHE_MAX", 2)
        columnar_mod.clear_cache()
        db = tiny_database(seed=77)
        for path in (("age",), ("addr",), ("cars",), ("age", )):
            columnar_mod.column(db, "P", path)
        dbs, columns = columnar_mod.cache_stats()
        assert dbs == 1 and columns == 2
        columnar_mod.clear_cache()

    def test_hit_returns_same_object(self):
        columnar_mod.clear_cache()
        db = tiny_database(seed=78)
        first = columnar_mod.column(db, "P", ("age",))
        assert columnar_mod.column(db, "P", ("age",)) is first
        columnar_mod.clear_cache()
