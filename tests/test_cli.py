"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestEval:
    def test_simple_query(self, capsys):
        assert main(["eval", "iterate(Kp(T), age) ! P"]) == 0
        out = capsys.readouterr().out
        assert "query :" in out and "result:" in out

    def test_sized_database(self, capsys):
        assert main(["eval", "iterate(Kp(T), id) ! V",
                     "--vehicles", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Vehicle#") == 3

    def test_parse_error_reported(self, capsys):
        assert main(["eval", "iterate(("]) == 2
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_oql(self, capsys):
        code = main(["optimize",
                     "select p.age from p in P where p.age > 25",
                     "--execute"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "result:" in out

    def test_kola_input(self, capsys):
        code = main(["optimize", "--kola",
                     "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"])
        assert code == 0
        assert "simplified" in capsys.readouterr().out


class TestUntangle:
    def test_paper_garage(self, capsys):
        assert main(["untangle", "--paper-garage"]) == 0
        out = capsys.readouterr().out
        assert "[19]" in out
        assert "join(in @ (id >< cars)" in out

    def test_custom_query(self, capsys):
        query = ("iterate(Kp(T), <id, iter(gt @ <age o pi2, age o pi1>,"
                 " pi2) o <id, Kf(P)>>) ! P")
        assert main(["untangle", query]) == 0
        assert "final form" in capsys.readouterr().out


class TestVerify:
    def test_sound_rule_passes(self, capsys):
        code = main(["verify", "id o $f", "$f"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_unsound_rule_refuted(self, capsys):
        code = main(["verify", "inv(gt)", "leq", "--sort", "pred"])
        assert code == 1
        assert "REFUTED" in capsys.readouterr().out


class TestProve:
    def test_rule12_instance(self, capsys):
        code = main(["prove", "iterate($p, id) o iterate(Kp(T), $f)",
                     "iterate($p @ $f, $f)"])
        assert code == 0
        assert "=" in capsys.readouterr().out

    def test_unprovable(self, capsys):
        code = main(["prove", "age", "city", "--depth", "1"])
        assert code == 1
        assert "no proof" in capsys.readouterr().out


class TestRules:
    def test_list_group(self, capsys):
        assert main(["rules", "--group", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "r19" in out and "rules)" in out

    def test_list_all(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "r11" in out


class TestServeClient:
    @pytest.fixture(scope="class")
    def daemon_port(self):
        import asyncio
        import threading

        from repro.schema.generator import tiny_database
        from repro.serve import PlanServer

        holder = {}
        ready = threading.Event()

        def run():
            async def main_coro():
                server = PlanServer(tiny_database(), workers=1,
                                    backend="thread",
                                    host="127.0.0.1", port=0)
                await server.start()
                holder["server"] = server
                holder["loop"] = asyncio.get_running_loop()
                ready.set()
                await server.serve_forever()

            asyncio.run(main_coro())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=120)
        yield holder["server"].tcp_port
        asyncio.run_coroutine_threadsafe(
            holder["server"].stop(), holder["loop"]).result(30)
        thread.join(timeout=30)

    def test_ping(self, daemon_port, capsys):
        assert main(["client", "--ping", "--port",
                     str(daemon_port)]) == 0
        assert "pong" in capsys.readouterr().out

    def test_optimize_roundtrip(self, daemon_port, capsys):
        code = main(["client", "select p.age from p in P where "
                     "p.age > 30", "--port", str(daemon_port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized query" in out and "served by worker" in out

    def test_stats(self, daemon_port, capsys):
        assert main(["client", "--stats", "--port",
                     str(daemon_port)]) == 0
        out = capsys.readouterr().out
        assert "worker(s)" in out and "served" in out

    def test_query_required(self, daemon_port, capsys):
        assert main(["client", "--port", str(daemon_port)]) == 2
        assert "needs a query" in capsys.readouterr().err


class TestRulepack:
    GOOD = ('pack add-on\nversion 1\n\nrule demo-id-left\n'
            '    safety exhaustive\n    groups simplify\n'
            '    lhs id o $f\n    rhs $f\n')
    BAD = ('pack broken\nversion 1\n\nrule inv-gt-is-leq\n'
           '    sort pred\n    safety exhaustive\n    groups simplify\n'
           '    lhs inv(gt)\n    rhs leq\n')
    FAST = ["--trials", "20", "--oracle-probes", "2",
            "--oracle-queries", "1"]

    @pytest.fixture()
    def good_pack(self, tmp_path):
        path = tmp_path / "good.kpack"
        path.write_text(self.GOOD)
        return str(path)

    @pytest.fixture()
    def bad_pack(self, tmp_path):
        path = tmp_path / "bad.kpack"
        path.write_text(self.BAD)
        return str(path)

    def test_check_admits_sound_pack(self, good_pack, capsys):
        assert main(["rulepack", "check", good_pack] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "pack add-on v1: 1 rule(s)" in out
        assert "1/1 rule(s) admitted" in out

    def test_check_rejects_with_counterexample(self, bad_pack, capsys):
        assert main(["rulepack", "check", bad_pack] + self.FAST) == 1
        out = capsys.readouterr().out
        assert "[REJECT] broken/inv-gt-is-leq at stage model-check" in out
        assert "counterexample:" in out

    def test_check_writes_report_artifact(self, bad_pack, tmp_path,
                                          capsys):
        import json
        report_path = tmp_path / "gate_report.json"
        code = main(["rulepack", "check", bad_pack,
                     "--report", str(report_path)] + self.FAST)
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is False
        assert payload["checked"] == 1 and payload["rejected"] == 1
        (entry,) = payload["results"]
        assert entry["rule"] == "inv-gt-is-leq"
        assert entry["rejected_stage"] == "model-check"
        assert {s["stage"] for s in entry["stages"]} \
            >= {"parse", "model-check"}
        assert payload["config"]["trials"] == 20

    def test_check_needs_a_pack(self, capsys):
        assert main(["rulepack", "check"]) == 2
        assert "--standard" in capsys.readouterr().err

    def test_malformed_pack_is_a_cli_error(self, tmp_path, capsys):
        path = tmp_path / "mangled.kpack"
        path.write_text("pack mangled\nversion 1\nrule r\n    wat 3\n")
        assert main(["rulepack", "check", str(path)]) == 2
        assert "unknown rule field" in capsys.readouterr().err

    def test_list_standard(self, capsys):
        assert main(["rulepack", "list", "--standard"]) == 0
        out = capsys.readouterr().out
        assert "pack fig4 v1: 12 rule(s)" in out
        assert "pack standard-groups v1" in out
        assert "group simplify:" in out

    def test_list_rules_flag(self, good_pack, capsys):
        assert main(["rulepack", "list", good_pack, "--rules"]) == 0
        out = capsys.readouterr().out
        assert "demo-id-left: exhaustive" in out

    def test_load_reports_the_built_rulebase(self, good_pack, capsys):
        code = main(["rulepack", "load", good_pack] + self.FAST)
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded 1 rule(s) into 1 group(s)" in out
        assert "simplify: 1 rule(s)" in out

    def test_load_standard_no_verify(self, capsys):
        code = main(["rulepack", "load", "--standard", "--no-verify"])
        assert code == 0
        assert "loaded 179 rule(s) into 32 group(s)" \
            in capsys.readouterr().out

    def test_load_rejects_bad_pack(self, bad_pack, capsys):
        assert main(["rulepack", "load", bad_pack] + self.FAST) == 1
        assert "[REJECT]" in capsys.readouterr().out
