"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestEval:
    def test_simple_query(self, capsys):
        assert main(["eval", "iterate(Kp(T), age) ! P"]) == 0
        out = capsys.readouterr().out
        assert "query :" in out and "result:" in out

    def test_sized_database(self, capsys):
        assert main(["eval", "iterate(Kp(T), id) ! V",
                     "--vehicles", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Vehicle#") == 3

    def test_parse_error_reported(self, capsys):
        assert main(["eval", "iterate(("]) == 2
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_oql(self, capsys):
        code = main(["optimize",
                     "select p.age from p in P where p.age > 25",
                     "--execute"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "result:" in out

    def test_kola_input(self, capsys):
        code = main(["optimize", "--kola",
                     "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"])
        assert code == 0
        assert "simplified" in capsys.readouterr().out


class TestUntangle:
    def test_paper_garage(self, capsys):
        assert main(["untangle", "--paper-garage"]) == 0
        out = capsys.readouterr().out
        assert "[19]" in out
        assert "join(in @ (id >< cars)" in out

    def test_custom_query(self, capsys):
        query = ("iterate(Kp(T), <id, iter(gt @ <age o pi2, age o pi1>,"
                 " pi2) o <id, Kf(P)>>) ! P")
        assert main(["untangle", query]) == 0
        assert "final form" in capsys.readouterr().out


class TestVerify:
    def test_sound_rule_passes(self, capsys):
        code = main(["verify", "id o $f", "$f"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_unsound_rule_refuted(self, capsys):
        code = main(["verify", "inv(gt)", "leq", "--sort", "pred"])
        assert code == 1
        assert "REFUTED" in capsys.readouterr().out


class TestProve:
    def test_rule12_instance(self, capsys):
        code = main(["prove", "iterate($p, id) o iterate(Kp(T), $f)",
                     "iterate($p @ $f, $f)"])
        assert code == 0
        assert "=" in capsys.readouterr().out

    def test_unprovable(self, capsys):
        code = main(["prove", "age", "city", "--depth", "1"])
        assert code == 1
        assert "no proof" in capsys.readouterr().out


class TestRules:
    def test_list_group(self, capsys):
        assert main(["rules", "--group", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "r19" in out and "rules)" in out

    def test_list_all(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "r11" in out


class TestServeClient:
    @pytest.fixture(scope="class")
    def daemon_port(self):
        import asyncio
        import threading

        from repro.schema.generator import tiny_database
        from repro.serve import PlanServer

        holder = {}
        ready = threading.Event()

        def run():
            async def main_coro():
                server = PlanServer(tiny_database(), workers=1,
                                    backend="thread",
                                    host="127.0.0.1", port=0)
                await server.start()
                holder["server"] = server
                holder["loop"] = asyncio.get_running_loop()
                ready.set()
                await server.serve_forever()

            asyncio.run(main_coro())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=120)
        yield holder["server"].tcp_port
        asyncio.run_coroutine_threadsafe(
            holder["server"].stop(), holder["loop"]).result(30)
        thread.join(timeout=30)

    def test_ping(self, daemon_port, capsys):
        assert main(["client", "--ping", "--port",
                     str(daemon_port)]) == 0
        assert "pong" in capsys.readouterr().out

    def test_optimize_roundtrip(self, daemon_port, capsys):
        code = main(["client", "select p.age from p in P where "
                     "p.age > 30", "--port", str(daemon_port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized query" in out and "served by worker" in out

    def test_stats(self, daemon_port, capsys):
        assert main(["client", "--stats", "--port",
                     str(daemon_port)]) == 0
        out = capsys.readouterr().out
        assert "worker(s)" in out and "served" in out

    def test_query_required(self, daemon_port, capsys):
        assert main(["client", "--port", str(daemon_port)]) == 2
        assert "needs a query" in capsys.readouterr().err
