"""Equality-saturation search: the driver, cost-based extraction, the
optimizer's ``search="saturate"`` mode, the cross-query plan cache, the
cost-model memo, and the uncosted-plan (no-db) regression."""

import pytest

from repro.core.eval import eval_obj
from repro.optimizer.cost import CostModel, cost_cache_stats
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.physical import JoinNestPlan
from repro.rewrite.engine import Engine
from repro.saturate import (Extractor, SaturationBudget, Saturator,
                            extract_best)
from repro.schema.generator import (GeneratorConfig, generate_database,
                                    tiny_database)
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family

_DB = tiny_database(seed=17)


@pytest.fixture(scope="module")
def saturated_garage(rulebase, queries):
    engine = Engine()
    saturator = Saturator(engine, rulebase.group_compiled("saturate"))
    return saturator.run([queries.kg1])


class TestSaturator:
    def test_reaches_untangled_form(self, saturated_garage, queries):
        """Saturation from KG1 alone must discover KG2 (the greedy
        pipeline's five-block product) as an equal form."""
        run = saturated_garage
        # The e-matcher merges through e-node recombinations, so KG2 may
        # be represented without ever being inserted whole — probe
        # structurally rather than via the insertion map.
        assert run.egraph.lookup(queries.kg2) == run.root_class

    def test_terminates_with_report(self, saturated_garage):
        report = saturated_garage.report
        assert report.iterations >= 1
        assert report.enodes > 0
        assert report.rewrites_applied > 0
        assert report.saturated or report.budget_hit or \
            report.iterations == SaturationBudget().max_iterations

    def test_all_forms_in_root_class_are_equal(self, saturated_garage,
                                               queries):
        """Every representative of the root class evaluates to the
        garage query's result — saturation only ever merged equals."""
        run = saturated_garage
        reference = eval_obj(queries.kg1, _DB)
        for rep in run.egraph.sample_terms(run.root, 6):
            assert eval_obj(rep, _DB) == reference

    def test_enode_budget_respected(self, rulebase, queries):
        budget = SaturationBudget(max_iterations=50, max_enodes=40)
        saturator = Saturator(Engine(),
                              rulebase.group_compiled("saturate"), budget)
        run = saturator.run([queries.kg1])
        assert run.report.budget_hit == "enodes"
        # one overshoot round at most: growth stops right after the check
        assert run.egraph.enodes_allocated < 40 + 200

    def test_iteration_budget_respected(self, rulebase, queries):
        budget = SaturationBudget(max_iterations=1)
        saturator = Saturator(Engine(),
                              rulebase.group_compiled("saturate"), budget)
        run = saturator.run([queries.kg1])
        assert run.report.iterations == 1

    def test_seeds_merged_into_one_class(self, rulebase, queries):
        saturator = Saturator(Engine(),
                              rulebase.group_compiled("saturate"),
                              SaturationBudget(max_iterations=1))
        run = saturator.run([queries.kg1, queries.kg2])
        assert run.egraph.class_of(queries.kg1) == run.root_class
        assert run.egraph.class_of(queries.kg2) == run.root_class

    def test_no_seeds_rejected(self, rulebase):
        saturator = Saturator(Engine(),
                              rulebase.group_compiled("saturate"))
        with pytest.raises(ValueError):
            saturator.run([])


class TestExtraction:
    def test_extracted_term_is_equal(self, saturated_garage, queries):
        best = extract_best(saturated_garage.egraph,
                            saturated_garage.root)
        assert eval_obj(best.term, _DB) == eval_obj(queries.kg1, _DB)

    def test_extraction_prefers_untangled_shape(self, saturated_garage):
        """The extraction weights price the correlated ``iter`` far
        above ``join``, so the best term of the garage class is the
        join/nest form, not the nested original."""
        best = extract_best(saturated_garage.egraph,
                            saturated_garage.root)
        assert "join" in best.term.ops
        assert "iter" not in best.term.ops

    def test_candidates_sorted_and_unique(self, saturated_garage):
        extractor = Extractor(saturated_garage.egraph)
        frontier = extractor.candidates(saturated_garage.root)
        assert frontier
        costs = [candidate.cost for candidate in frontier]
        assert costs == sorted(costs)
        terms = [candidate.term for candidate in frontier]
        assert len(terms) == len(set(terms))

    def test_costs_monotone_with_children(self, saturated_garage):
        """A class's cost strictly exceeds each child's in its chosen
        e-node (positivity — the acyclicity argument)."""
        extractor = Extractor(saturated_garage.egraph)
        egraph = saturated_garage.egraph
        for cid in egraph.class_ids():
            cost = extractor.cost_of(cid)
            _, (_, _, child_ids) = extractor._costs[egraph.find(cid)]
            for child in child_ids:
                assert cost > extractor.cost_of(child)

    def test_cyclic_class_extraction_terminates(self, rulebase):
        """Identity rules create x = id o x classes; extraction must
        still return a finite term."""
        from repro.saturate.egraph import EGraph
        from repro.core.parser import parse_fun
        from repro.rewrite.pattern import canon
        egraph = EGraph()
        x = egraph.add(canon(parse_fun("age")))
        wrapped = egraph.add(canon(parse_fun("id o age")))
        egraph.merge(x, wrapped)
        egraph.rebuild()
        best = extract_best(egraph, x)
        assert best.term == canon(parse_fun("age"))


class TestOptimizerSaturate:
    def test_never_worse_than_greedy_on_garage(self, rulebase, db,
                                               queries):
        opt = Optimizer(rulebase)
        greedy = opt.optimize(queries.kg1, db)
        saturate = opt.optimize(queries.kg1, db, search="saturate")
        assert saturate.estimated_cost <= greedy.estimated_cost
        assert isinstance(saturate.plan, JoinNestPlan)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_never_worse_on_depth_family(self, rulebase, db, depth):
        opt = Optimizer(rulebase)
        query = translate_query(hidden_join_family(
            HiddenJoinSpec(depth=depth)))
        greedy = opt.optimize(query, db)
        saturate = opt.optimize(query, db, search="saturate")
        assert saturate.estimated_cost <= greedy.estimated_cost

    def test_saturate_result_executes_correctly(self, rulebase, queries):
        opt = Optimizer(rulebase)
        result = opt.optimize(queries.kg1, _DB, search="saturate")
        assert result.execute(_DB) == eval_obj(queries.kg1, _DB)

    def test_report_attached(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        result = opt.optimize(queries.kg1, db, search="saturate")
        assert result.search == "saturate"
        assert result.saturation is not None
        assert "e-nodes" in result.saturation.summary()
        assert "saturation:" in result.explain()

    def test_greedy_mode_has_no_report(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        result = opt.optimize(queries.kg1, db)
        assert result.search == "greedy"
        assert result.saturation is None

    def test_default_mode_configurable(self, rulebase, db, queries):
        opt = Optimizer(rulebase, search="saturate")
        result = opt.optimize(queries.kg1, db)
        assert result.search == "saturate"

    def test_unknown_mode_rejected(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        with pytest.raises(ValueError):
            opt.optimize(queries.kg1, db, search="bfs")
        with pytest.raises(ValueError):
            Optimizer(rulebase, search="bfs")

    def test_tight_budget_degrades_to_greedy(self, rulebase, db, queries):
        """An immediately exhausted budget still yields the greedy plan
        (its forms are seeds), never something worse."""
        opt = Optimizer(rulebase, saturation_budget=SaturationBudget(
            max_iterations=1, max_enodes=1))
        greedy = opt.optimize(queries.kg1, db)
        saturate = opt.optimize(queries.kg1, db, search="saturate")
        assert saturate.estimated_cost <= greedy.estimated_cost
        assert saturate.saturation.budget_hit == "enodes"


class TestPlanCache:
    def test_repeat_query_hits(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        first = opt.optimize(queries.kg1, db)
        second = opt.optimize(queries.kg1, db)
        assert second is first
        info = opt.plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_equivalent_spellings_share_entry(self, rulebase, db,
                                              queries):
        """The key is the *canonical interned* term: the AQUA garage
        query and its translated KOLA term are one cache entry."""
        opt = Optimizer(rulebase)
        opt.optimize(queries.kg1, db)
        again = opt.optimize(queries.garage_aqua, db)
        assert again.untangled == queries.kg2
        assert opt.plan_cache_info()["hits"] == 1

    def test_search_modes_cached_separately(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        greedy = opt.optimize(queries.kg1, db)
        saturate = opt.optimize(queries.kg1, db, search="saturate")
        assert saturate is not greedy
        assert opt.plan_cache_info()["misses"] == 2

    def test_db_stats_change_invalidates(self, rulebase, queries):
        opt = Optimizer(rulebase)
        small = tiny_database(seed=17)
        opt.optimize(queries.kg1, small)
        bigger = generate_database(GeneratorConfig(
            n_persons=20, n_vehicles=5, n_addresses=4, seed=17))
        result = opt.optimize(queries.kg1, bigger)
        info = opt.plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2
        assert result.estimated_cost is not None

    def test_same_stats_different_db_object_hits(self, rulebase, queries):
        """Two databases with identical cardinalities share the entry —
        the key is the stats fingerprint, not object identity."""
        opt = Optimizer(rulebase)
        opt.optimize(queries.kg1, tiny_database(seed=17))
        opt.optimize(queries.kg1, tiny_database(seed=17))
        assert opt.plan_cache_info()["hits"] == 1

    def test_rulebase_change_invalidates(self, db, queries):
        from repro.rules.registry import standard_rulebase
        base = standard_rulebase()
        opt = Optimizer(base)
        opt.optimize(queries.kg1, db)
        base.extend_group("scratch-group", ["r18"])  # bumps generation
        opt.optimize(queries.kg1, db)
        info = opt.plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_clear_plan_cache(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        opt.optimize(queries.kg1, db)
        opt.clear_plan_cache()
        assert opt.plan_cache_info()["size"] == 0
        opt.optimize(queries.kg1, db)
        assert opt.plan_cache_info()["misses"] == 2

    def test_cache_bounded(self, rulebase, db, queries):
        opt = Optimizer(rulebase)
        opt.PLAN_CACHE_MAX = 1
        opt.optimize(queries.kg1, db)
        opt.optimize(queries.t1k_source, db)
        assert opt.plan_cache_info()["size"] == 1


class TestUncostedPlans:
    """Regression: without a database the optimizer used to report
    ``float("nan")`` for recognized join plans — which compares False
    against everything and printed as ``nan`` in explain()."""

    def test_cost_is_none_without_db(self, rulebase, queries):
        opt = Optimizer(rulebase)
        result = opt.optimize(queries.kg1)
        assert result.estimated_cost is None
        assert isinstance(result.plan, JoinNestPlan)

    def test_explain_never_prints_nan(self, rulebase, queries):
        opt = Optimizer(rulebase)
        text = opt.optimize(queries.kg1).explain()
        assert "nan" not in text
        assert "not costed" in text
        assert "est. cost" in text

    def test_saturate_without_db(self, rulebase, queries):
        result = Optimizer(rulebase).optimize(queries.kg1,
                                              search="saturate")
        assert result.estimated_cost is None
        assert isinstance(result.plan, JoinNestPlan)
        assert eval_obj(result.chosen, _DB) == eval_obj(queries.kg1, _DB)

    def test_costed_path_unaffected(self, rulebase, db, queries):
        result = Optimizer(rulebase).optimize(queries.kg1, db)
        assert result.estimated_cost == pytest.approx(
            result.plan.cost_estimate(db, CostModel()))


class TestCostMemo:
    def test_repeat_estimate_hits(self, db, queries):
        model = CostModel()
        before = cost_cache_stats()
        first = model.estimate(queries.kg1, db)
        second = model.estimate(queries.kg1, db)
        after = cost_cache_stats()
        assert first == second
        assert after.hits == before.hits + 1
        assert after.misses == before.misses + 1

    def test_stats_fingerprint_shared_across_dbs(self, queries):
        """Same cardinalities, different Database objects: one memo
        entry (the key is the fingerprint)."""
        model = CostModel()
        first = model.estimate(queries.kg1, tiny_database(seed=17))
        before = cost_cache_stats()
        second = model.estimate(queries.kg1, tiny_database(seed=17))
        assert first == second
        assert cost_cache_stats().hits == before.hits + 1

    def test_different_stats_miss(self, queries):
        model = CostModel()
        model.estimate(queries.kg1, tiny_database(seed=17))
        before = cost_cache_stats()
        model.estimate(queries.kg1, generate_database(GeneratorConfig(
            n_persons=30, n_vehicles=5, n_addresses=4, seed=17)))
        assert cost_cache_stats().misses == before.misses + 1

    def test_tuning_params_part_of_key(self, db, queries):
        loose = CostModel(selectivity=0.9)
        tight = CostModel(selectivity=0.1)
        assert loose.estimate(queries.kg1, db) != \
            tight.estimate(queries.kg1, db)

    def test_cache_bounded(self, db, queries):
        model = CostModel()
        model.ESTIMATE_CACHE_MAX = 2
        for query in (queries.kg1, queries.kg2, queries.k3, queries.k4):
            model.estimate(query, db)
        assert model.estimate_cache_info()["size"] <= 2
