"""Tests for the plan-serving daemon: framing, the serving pool,
stats aggregation, wire parity with the sequential optimizer,
admission control, and graceful worker recycling."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.core.parser import parse_obj
from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import BatchOptimizer
from repro.rewrite.pattern import canon
from repro.schema.generator import tiny_database
from repro.serve import (AsyncServeClient, PlanServer, ServeClient,
                         ServeError, ServingPool, PoolClosedError)
from repro.serve.protocol import (FrameError, MAX_FRAME, encode_frame,
                                  query_body, read_frame_sock,
                                  resolve_query)
from repro.serve.stats import snapshot_summary, stats_snapshot
from repro.workloads.corpus import corpus_stream, serving_corpus

OQL = "select p.age from p in P where p.age > {c}"
KOLA = "iterate(gt @ <age, Kf({c})>, id) ! P"


def _results_match(a, b) -> bool:
    return (a.chosen is b.chosen
            and type(a.plan) is type(b.plan)
            and a.estimated_cost == b.estimated_cost
            and a.derivation.rules_used() == b.derivation.rules_used())


# -- framing -----------------------------------------------------------------


class TestProtocol:
    def _roundtrip(self, message):
        frame = encode_frame(message)
        server, client = socket.socketpair()
        try:
            server.sendall(frame)
            server.shutdown(socket.SHUT_WR)
            return read_frame_sock(client)
        finally:
            server.close()
            client.close()

    def test_frame_roundtrip(self):
        message = {"op": "optimize", "id": 7, "oql": "select ..."}
        assert self._roundtrip(message) == message

    def test_clean_eof_is_none(self):
        server, client = socket.socketpair()
        server.close()
        try:
            assert read_frame_sock(client) is None
        finally:
            client.close()

    def test_truncated_frame_raises(self):
        server, client = socket.socketpair()
        try:
            server.sendall(encode_frame({"id": 1})[:-2])
            server.close()
            with pytest.raises(FrameError):
                read_frame_sock(client)
        finally:
            client.close()

    def test_oversize_frame_rejected(self):
        server, client = socket.socketpair()
        try:
            server.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(FrameError):
                read_frame_sock(client)
        finally:
            server.close()
            client.close()

    def test_bad_json_raises(self):
        server, client = socket.socketpair()
        try:
            server.sendall(struct.pack(">I", 3) + b"{{{")
            with pytest.raises(FrameError):
                read_frame_sock(client)
        finally:
            server.close()
            client.close()

    def test_oversize_outgoing_rejected(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_query_body_forms(self):
        term = canon(parse_obj(KOLA.format(c=30)))
        assert query_body("select ...") == {"oql": "select ..."}
        body = query_body(term)
        assert body == {"term": term.to_portable()}
        assert resolve_query(body) is term
        assert resolve_query({"oql": OQL.format(c=30)}) is not None
        assert resolve_query({"kola": KOLA.format(c=30)}) is term

    def test_resolve_query_rejects_bad_requests(self):
        with pytest.raises(ServeError):
            resolve_query({})                      # no query at all
        with pytest.raises(ServeError):
            resolve_query({"oql": "x", "kola": "y"})   # ambiguous
        with pytest.raises(ServeError):
            resolve_query({"oql": "not oql at all ((("})
        with pytest.raises(ServeError):
            resolve_query({"term": ["nope"]})


# -- stats aggregation -------------------------------------------------------


class TestStatsSnapshot:
    def _info(self, worker, hits, processed=5):
        return {
            "worker": worker, "processed": processed,
            "plan_cache": {
                "size": 2, "max_size": 8, "hits": hits, "misses": 1,
                "evictions": 0,
                "param": {"size": 1, "max_size": 4, "hits": hits,
                          "misses": 0, "evictions": 0, "blocked": 2,
                          "warm_hits": 3, "warm_pool_size": 1},
                "kernel": {"size": 1, "max_size": 4, "hits": 0,
                           "misses": 0, "evictions": 0,
                           "kernel_hits": 4, "kernel_misses": 1},
            },
            "nf_cache": {"size": 1, "max_size": 2, "hits": 1,
                         "misses": 0, "evictions": 0},
            "cost_cache": {"size": 0, "max_size": 2, "hits": 0,
                           "misses": 0, "evictions": 0},
        }

    def test_merges_lists_and_dicts_identically(self):
        infos = [self._info(0, 2), self._info(1, 3)]
        by_id = {0: infos[0], 1: infos[1]}
        assert stats_snapshot(infos) == stats_snapshot(by_id)

    def test_aggregates_every_level(self):
        snapshot = stats_snapshot([self._info(0, 2), self._info(1, 3)])
        assert snapshot["workers"] == 2
        assert snapshot["processed"] == 10
        assert snapshot["plan_cache"]["hits"] == 5
        assert snapshot["plan_cache"]["param"]["warm_hits"] == 6
        assert snapshot["plan_cache"]["param"]["blocked"] == 4
        assert snapshot["plan_cache"]["kernel"]["kernel_hits"] == 8
        assert snapshot["nf_cache"]["hits"] == 2
        assert len(snapshot["per_worker"]) == 2

    def test_summary_mentions_each_level(self):
        line = snapshot_summary(
            stats_snapshot([self._info(0, 2, processed=7)]))
        assert "7 served" in line
        assert "warm e-graph" in line
        assert "kernels" in line

    def test_tolerates_flat_blobs(self):
        flat = {"processed": 1,
                "plan_cache": {"size": 0, "max_size": 1, "hits": 0,
                               "misses": 0, "evictions": 0}}
        snapshot = stats_snapshot([flat])
        assert "param" not in snapshot["plan_cache"]
        assert snapshot["processed"] == 1


# -- the serving pool (no daemon) --------------------------------------------


class TestServingPool:
    def test_family_affinity_routing(self):
        pool = ServingPool(workers=4, backend="thread")
        slots = {pool.slot_for(canon(parse_obj(KOLA.format(c=c))))
                 for c in range(40)}
        # Every constant of one template is one skeleton family.
        assert len(slots) == 1

    def test_exact_routing_spreads_constants(self):
        pool = ServingPool(workers=4, backend="thread",
                           abstract_cache=False)
        slots = {pool.slot_for(canon(parse_obj(KOLA.format(c=c))))
                 for c in range(40)}
        assert len(slots) > 1

    def test_submit_reply_and_close(self, tiny_db):
        replies = {}
        done = threading.Event()

        def on_reply(serial, worker_id, outcome):
            replies[serial] = outcome
            if len(replies) == 4:
                done.set()

        pool = ServingPool(tiny_db, workers=2, backend="thread",
                           on_reply=on_reply)
        with pool:
            assert pool.warmup()
            for serial in range(4):
                term = canon(parse_obj(KOLA.format(c=serial)))
                pool.submit(serial, term.to_portable(), term=term)
            assert done.wait(timeout=60)
        assert sorted(replies) == [0, 1, 2, 3]
        assert all(outcome[0] == "ok" for outcome in replies.values())
        with pytest.raises(PoolClosedError):
            pool.submit(9, None, slot=0)

    def test_close_drains_inflight(self, tiny_db):
        replies = {}
        pool = ServingPool(
            tiny_db, workers=1, backend="thread",
            on_reply=lambda s, w, o: replies.setdefault(s, o))
        pool.start()
        assert pool.warmup()
        term = canon(parse_obj(KOLA.format(c=99)))
        pool.submit(0, term.to_portable(), term=term)
        pool.close()          # must not race the in-flight reply away
        assert replies and replies[0][0] == "ok"


# -- a live daemon (thread backend) ------------------------------------------


class _ServerThread:
    """A PlanServer running on its own loop in a daemon thread, so
    blocking clients (and per-test asyncio loops) can talk to it."""

    def __init__(self, **kwargs) -> None:
        self.server: PlanServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.error: str | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        kwargs=kwargs, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=120)
        if self.error is not None:
            raise RuntimeError(self.error)

    def _run(self, **kwargs) -> None:
        async def main():
            self.loop = asyncio.get_running_loop()
            self.server = PlanServer(**kwargs)
            try:
                await self.server.start()
            except Exception as error:
                self.error = f"{type(error).__name__}: {error}"
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self.server.tcp_port

    def call(self, coroutine, timeout: float = 120.0):
        """Run a coroutine on the server's loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop).result(timeout)

    def stop(self) -> None:
        if self.server is not None and self.loop is not None:
            self.call(self.server.stop())
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def serve_db():
    return tiny_database()


@pytest.fixture(scope="module")
def daemon(serve_db):
    st = _ServerThread(db=serve_db, workers=2, backend="thread",
                       host="127.0.0.1", port=0)
    yield st
    st.stop()


class TestDaemon:
    def test_ping(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            assert client.ping() < 5.0

    def test_oql_parity_with_direct_optimize(self, daemon, serve_db):
        oql = OQL.format(c=31)
        direct = Optimizer().optimize(oql, serve_db)
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            served = client.optimize(oql)
        assert _results_match(served.result, direct)
        assert served.worker >= 0
        assert served.elapsed_ms >= 0.0

    def test_kola_and_term_parity(self, daemon, serve_db):
        term = canon(parse_obj(KOLA.format(c=55)))
        direct = Optimizer().optimize(term, serve_db)
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            by_text = client.optimize(KOLA.format(c=55), kola=True)
            by_term = client.optimize(term)
        assert _results_match(by_text.result, direct)
        assert _results_match(by_term.result, direct)

    def test_stats_endpoint(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            client.optimize(OQL.format(c=42))
            stats = client.stats()
        assert stats["workers"] == 2
        assert stats["processed"] >= 1
        assert "param" in stats["plan_cache"]
        assert stats["server"]["served"] >= 1
        assert stats["server"]["backend"] == "thread"

    def test_search_mismatch_is_an_error(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            with pytest.raises(ServeError, match="search"):
                client.optimize(OQL.format(c=30), search="saturate")

    def test_unknown_op_keeps_connection_open(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            response = client.request({"op": "frobnicate"})
            assert response["ok"] is False
            assert "unknown op" in response["error"]
            assert client.ping() < 5.0   # same connection still works

    def test_non_dict_request_keeps_connection_open(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            client._sock.sendall(encode_frame([1, 2, 3]))
            response = read_frame_sock(client._sock)
            assert response["ok"] is False
            assert client.ping() < 5.0

    def test_bad_query_is_an_error_response(self, daemon):
        with ServeClient(host="127.0.0.1", port=daemon.port) as client:
            with pytest.raises(ServeError):
                client.optimize("definitely not oql (((")
            assert client.ping() < 5.0

    def test_malformed_frame_closes_connection(self, daemon):
        sock = socket.create_connection(("127.0.0.1", daemon.port))
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME + 99))
            response = read_frame_sock(sock)
            assert response["ok"] is False
            assert "protocol error" in response["error"]
            assert read_frame_sock(sock) is None   # server hung up
        finally:
            sock.close()

    def test_bad_json_closes_connection(self, daemon):
        sock = socket.create_connection(("127.0.0.1", daemon.port))
        try:
            sock.sendall(struct.pack(">I", 4) + b"\xff\xfe{{")
            response = read_frame_sock(sock)
            assert response["ok"] is False
            assert read_frame_sock(sock) is None
        finally:
            sock.close()

    def test_concurrent_clients_pipeline_out_of_order(self, daemon,
                                                      serve_db):
        queries = [OQL.format(c=c) for c in range(20, 36)]
        direct = [Optimizer().optimize(q, serve_db) for q in queries]

        async def one_client():
            async with AsyncServeClient(host="127.0.0.1",
                                        port=daemon.port) as client:
                return await asyncio.gather(
                    *[client.optimize(q) for q in queries])

        async def run():
            return await asyncio.gather(one_client(), one_client())

        for batch in asyncio.run(run()):
            assert len(batch) == len(queries)
            assert all(_results_match(s.result, d)
                       for s, d in zip(batch, direct))

    def test_recycle_under_load_drops_nothing(self, daemon, serve_db):
        """The acceptance bar: a worker recycle during sustained
        traffic completes with zero dropped or errored requests."""
        queries = [OQL.format(c=c) for c in range(10, 90)]
        before = set(daemon.server.pool.worker_ids())
        recycles_before = daemon.server.counters["recycles"]

        async def run():
            async with AsyncServeClient(host="127.0.0.1",
                                        port=daemon.port) as client:
                tasks = [asyncio.create_task(client.optimize(q))
                         for q in queries]
                # Recycle both slots while those requests are in flight.
                await daemon.server.recycle_worker(0)
                await daemon.server.recycle_worker(1)
                return await asyncio.gather(*tasks)

        results = daemon.call(run())
        assert len(results) == len(queries)
        assert all(r.raw["ok"] for r in results)      # zero errored
        direct = [Optimizer().optimize(q, serve_db) for q in queries]
        assert all(_results_match(s.result, d)
                   for s, d in zip(results, direct))
        after = set(daemon.server.pool.worker_ids())
        assert after.isdisjoint(before)               # both replaced
        assert (daemon.server.counters["recycles"]
                == recycles_before + 2)


class TestAdmissionControl:
    @pytest.fixture(scope="class")
    def tight_daemon(self, serve_db):
        st = _ServerThread(db=serve_db, workers=1, backend="thread",
                           host="127.0.0.1", port=0, max_inflight=2,
                           queue_depth=2, shed_retry_after=0.01)
        yield st
        st.stop()

    def test_burst_sheds_with_retry_after_then_recovers(
            self, tight_daemon, serve_db):
        queries = [OQL.format(c=c) for c in range(30)]

        async def run():
            async with AsyncServeClient(
                    host="127.0.0.1", port=tight_daemon.port) as client:
                responses = await asyncio.gather(
                    *[client.request({"op": "optimize", "oql": q})
                      for q in queries])
                after = await client.optimize(OQL.format(c=77))
                return responses, after

        responses, after = asyncio.run(run())
        shed = [r for r in responses if r.get("shed")]
        served = [r for r in responses if r.get("ok")]
        assert shed, "a 30-deep burst against max_inflight=2 must shed"
        assert served, "admitted requests must still be served"
        assert all(r["retry_after"] > 0 for r in shed)
        assert all("overloaded" in r["error"] for r in shed)
        # After the burst drains, the daemon serves normally again.
        assert after.raw["ok"]
        assert (tight_daemon.server.counters["shed"] >= len(shed))

    def test_blocking_client_retries_after_shed(self, tight_daemon):
        # With generous retries a blocking client always gets through.
        with ServeClient(host="127.0.0.1",
                         port=tight_daemon.port) as client:
            served = client.optimize(OQL.format(c=88), shed_retries=50)
        assert served.raw["ok"]


@pytest.mark.slow
class TestProcessBackend:
    def test_daemon_over_unix_socket(self, tmp_path):
        db = tiny_database()
        path = str(tmp_path / "serve.sock")
        st = _ServerThread(db=db, workers=2, backend="process",
                           unix_path=path)
        try:
            oql = OQL.format(c=33)
            direct = Optimizer().optimize(oql, db)
            with ServeClient(unix_path=path) as client:
                served = client.optimize(oql)
                stats = client.stats()
            assert _results_match(served.result, direct)
            assert stats["workers"] == 2
        finally:
            st.stop()


# -- batch-layer drain regression --------------------------------------------


@pytest.mark.slow
class TestBatchCloseDrain:
    def test_close_keeps_late_replies(self):
        db = tiny_database()
        term = canon(parse_obj(KOLA.format(c=64)))
        batch = BatchOptimizer(db, workers=2)
        assert batch.warmup()
        # A chunk the normal batch loop will never read back: exactly
        # the shutdown race (a worker still replying while close()
        # tears the queues down).
        batch._task_queues[0].put(("chunk", [(0, term.to_portable())]))
        batch.close()
        assert 0 in batch.late_replies
        worker_id, outcome = batch.late_replies[0]
        assert worker_id == 0
        assert outcome[0] == "ok"


# -- serving corpus ----------------------------------------------------------


class TestServingCorpus:
    def test_distinct_means_distinct_skeletons(self):
        from repro.core.terms import abstract_constants
        queries = serving_corpus(60, seed=5)
        skeletons = {abstract_constants(q)[0] for q in queries}
        assert len(queries) == len(skeletons) == 60

    def test_deterministic(self):
        assert serving_corpus(40, seed=9) == serving_corpus(40, seed=9)

    def test_validates_input(self):
        with pytest.raises(ValueError):
            serving_corpus(0)

    def test_zipf_stream_is_skewed_and_deterministic(self):
        queries = serving_corpus(50, seed=3)
        stream = corpus_stream(queries, 500, seed=4, zipf=1.2)
        assert len(stream) == 500
        assert stream == corpus_stream(queries, 500, seed=4, zipf=1.2)
        counts = sorted((stream.count(q) for q in set(stream)),
                        reverse=True)
        # Zipf head: the most popular query dwarfs the median.
        assert counts[0] > 3 * counts[len(counts) // 2]

    def test_zipf_validation(self):
        queries = serving_corpus(5, seed=3)
        with pytest.raises(ValueError):
            corpus_stream(queries, 10, zipf=-1.0)
