"""Mutation-escape tests: the gate must reject every bred mutant.

``repro.rulepacks.mutate`` systematically breaks shipped rules (dropped
guards, flipped literals, swapped projections/metavariables, weakened
conjunctions); a mutant the gate admits is a *gate escape* and fails
the suite, naming the operator and rule so the hole is identifiable.
"""

import pytest

from repro.rulepacks import AdmissionGate, GateConfig, load_standard_packs
from repro.rulepacks.gate import STAGES
from repro.rulepacks.mutate import mutate_packs

#: Stage 2 catches nearly every mutant quickly at this trial count; the
#: ones it cannot (coherence breaks) die at stage 1.  Stage 3 is
#: exercised separately below with the mutant class built to slip
#: through stages 1-2.
FAST = GateConfig(trials=40, oracle_probes=2, oracle_queries=1)


@pytest.fixture(scope="module")
def mutants():
    bred = mutate_packs(load_standard_packs())
    assert len(bred) >= 80     # the breeding surface must not quietly shrink
    return bred


@pytest.fixture(scope="module")
def verdicts(mutants):
    gate = AdmissionGate(FAST)
    outcome = {}
    for mutant in mutants:
        report = gate.check(mutant.as_pack())
        (result,) = report.results
        outcome[mutant.label] = result
    return outcome


class TestNoEscapes:
    def test_every_mutant_rejected(self, verdicts):
        escaped = sorted(label for label, result in verdicts.items()
                         if result.admitted)
        assert not escaped, (
            f"{len(escaped)} mutant(s) escaped the gate: {escaped}")

    def test_catching_stage_is_named(self, verdicts):
        for label, result in verdicts.items():
            assert result.rejected_stage in STAGES, label

    def test_rejections_carry_evidence(self, verdicts):
        """Every rejection renders actionable detail (a counterexample
        or a coherence/round-trip explanation)."""
        for label, result in verdicts.items():
            failed = next(s for s in result.stages if s.status == "fail")
            assert failed.detail, label
            if failed.stage == "model-check":
                assert "counterexample:" in failed.detail, label

    def test_all_operators_bred(self, mutants):
        ops = {m.op for m in mutants}
        assert ops == {"drop-precondition", "flip-bool", "bump-int",
                       "swap-projections", "drop-conjunct",
                       "swap-metavars"}

    def test_guard_drops_rejected(self, verdicts):
        """A dropped guard leaves an unguarded rule tagged
        strategy-only but re-declared into no automatic group — it is
        the *model check* that must refute it (stage 2), or, for the
        injectivity rules whose unguarded form survives random typing,
        the oracle.  None may be admitted."""
        drop_labels = [label for label in verdicts
                       if label.startswith("drop-precondition:")]
        assert drop_labels
        for label in drop_labels:
            assert not verdicts[label].admitted, label


class TestOracleStageCatches:
    """The stage-3 differential oracle is live, not decorative: a rule
    that is sound on random instantiation yet unsound *as automated*
    (the classic unguarded ``count-map-inj``: count after a map is
    count only for injective maps) must be caught by the oracle when
    stages 1-2 are blind to it (trials=0 disables the model check)."""

    @pytest.fixture(scope="class")
    def unguarded_decl(self):
        from dataclasses import replace
        packs = load_standard_packs()
        decl = next(d for pack in packs for d in pack.rules
                    if d.name == "count-map-inj")
        assert decl.preconditions    # guarded as shipped
        return replace(decl, preconditions=(), groups=())

    @pytest.mark.parametrize("safety", ["exhaustive", "saturate-only"])
    def test_caught_by_oracle(self, unguarded_decl, safety):
        from dataclasses import replace

        from repro.rulepacks import RulePack
        decl = replace(unguarded_decl, safety=safety)
        pack = RulePack(name="escapee", version=1, rules=(decl,),
                        source="<test>")
        gate = AdmissionGate(GateConfig(trials=0, oracle_probes=4,
                                        oracle_queries=1))
        report = gate.check(pack)
        (result,) = report.results
        assert not result.admitted
        assert result.rejected_stage == "oracle"
        failed = next(s for s in result.stages if s.status == "fail")
        assert "direct" in failed.detail or "diverge" in failed.detail
