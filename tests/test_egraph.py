"""Unit tests for the e-graph: hashcons sharing, union-find, congruence
closure, bounded members, representative sampling, and the
represented-term counting that the saturation benchmark relies on."""

import pytest

from repro.core.errors import ParseError
from repro.core.parser import parse_fun, parse_obj
from repro.rewrite.pattern import canon
from repro.saturate.egraph import COUNT_CAP, EGraph


def _t(text):
    # function syntax first: bare names like "age" are primitives here,
    # not setnames
    try:
        return canon(parse_fun(text))
    except ParseError:
        return canon(parse_obj(text))


class TestAdd:
    def test_same_term_same_class(self):
        egraph = EGraph()
        a = egraph.add(_t("age o addr"))
        b = egraph.add(_t("age o addr"))
        assert a == b

    def test_subterms_get_classes(self):
        egraph = EGraph()
        egraph.add(_t("age o addr"))
        assert egraph.class_of(_t("age")) is not None
        assert egraph.class_of(_t("addr")) is not None

    def test_shared_subterms_share_classes(self):
        egraph = EGraph()
        egraph.add(_t("age o addr"))
        before = egraph.enodes_allocated
        egraph.add(_t("city o addr"))
        # `addr` is re-used: only `city` and the new compose are fresh.
        assert egraph.enodes_allocated == before + 2

    def test_unknown_term_has_no_class(self):
        egraph = EGraph()
        egraph.add(_t("age"))
        assert egraph.class_of(_t("addr")) is None

    def test_add_is_idempotent(self):
        egraph = EGraph()
        egraph.add(_t("iterate(Kp(T), age) ! P"))
        enodes = egraph.enodes_allocated
        egraph.add(_t("iterate(Kp(T), age) ! P"))
        assert egraph.enodes_allocated == enodes


class TestMergeAndCongruence:
    def test_merge_unions_classes(self):
        egraph = EGraph()
        a = egraph.add(_t("age"))
        b = egraph.add(_t("addr"))
        egraph.merge(a, b)
        assert egraph.find(a) == egraph.find(b)

    def test_congruence_propagates_upward(self):
        """age ≡ addr must force (age o id) ≡ (addr o id) after rebuild."""
        egraph = EGraph()
        fa = egraph.add(_t("age o pi1"))
        fb = egraph.add(_t("addr o pi1"))
        assert egraph.find(fa) != egraph.find(fb)
        egraph.merge(egraph.class_of(_t("age")),
                     egraph.class_of(_t("addr")))
        egraph.rebuild()
        assert egraph.find(fa) == egraph.find(fb)

    def test_congruence_propagates_transitively(self):
        """Two levels of context: g(f(a)) ≡ g(f(b)) from a ≡ b."""
        egraph = EGraph()
        ga = egraph.add(_t("city o (age o pi1)"))
        gb = egraph.add(_t("city o (addr o pi1)"))
        egraph.merge(egraph.class_of(_t("age")),
                     egraph.class_of(_t("addr")))
        egraph.rebuild()
        assert egraph.find(ga) == egraph.find(gb)

    def test_merge_is_idempotent(self):
        egraph = EGraph()
        a = egraph.add(_t("age"))
        merges_before = egraph.merges
        egraph.merge(a, a)
        assert egraph.merges == merges_before

    def test_members_survive_merge(self):
        egraph = EGraph()
        a = egraph.add(_t("age"))
        b = egraph.add(_t("addr"))
        root = egraph.merge(a, b)
        members = egraph.members_of(root)
        assert _t("age") in members and _t("addr") in members

    def test_members_bounded(self):
        egraph = EGraph(max_members_per_class=3)
        root = egraph.add(_t("age"))
        for name in ("addr", "city", "cars", "grgs", "child"):
            root = egraph.merge(root, egraph.add(_t(name)))
        assert len(egraph.members_of(root)) == 3

    def test_smallest_members_kept(self):
        egraph = EGraph(max_members_per_class=1)
        big = egraph.add(_t("age o (addr o pi1)"))
        small = egraph.add(_t("pi2"))
        root = egraph.merge(big, small)
        assert egraph.members_of(root) == [_t("pi2")]


class TestRepresentatives:
    def test_best_terms_is_total(self):
        egraph = EGraph()
        egraph.add(_t("iterate(Kp(T), age o addr) ! P"))
        best = egraph.best_terms()
        assert set(best) == set(egraph.class_ids())

    def test_best_terms_improve_after_merge(self):
        """Merging a subterm with a smaller equal makes enclosing
        classes report the recombined (smaller) best term."""
        egraph = EGraph()
        outer = egraph.add(_t("city o (id o addr)"))
        egraph.merge(egraph.class_of(_t("id o addr")),
                     egraph.add(_t("addr")))
        egraph.rebuild()
        best = egraph.best_terms()
        assert best[egraph.find(outer)] == _t("city o addr")

    def test_sample_terms_include_recombinations(self):
        egraph = EGraph()
        outer = egraph.add(_t("city o (id o addr)"))
        egraph.merge(egraph.class_of(_t("id o addr")),
                     egraph.add(_t("addr")))
        egraph.rebuild()
        samples = egraph.sample_terms(outer, 4)
        assert _t("city o addr") in samples
        assert _t("city o (id o addr)") in samples


class TestRepresentedCounts:
    def test_single_term_counts_one(self):
        egraph = EGraph()
        root = egraph.add(_t("age o addr"))
        assert egraph.represented_counts()[egraph.find(root)] == 1

    def test_cross_product_of_choices(self):
        """2 spellings of each child under one parent = 4 terms from a
        handful of e-nodes — the compression saturation banks on."""
        egraph = EGraph()
        root = egraph.add(_t("age o addr"))
        egraph.merge(egraph.class_of(_t("age")), egraph.add(_t("city")))
        egraph.merge(egraph.class_of(_t("addr")), egraph.add(_t("cars")))
        egraph.rebuild()
        counts = egraph.represented_counts()
        # the compose class: 2 x 2 child choices; plus each child class
        # stands for 2 leaves itself
        assert counts[egraph.find(root)] == 4

    def test_cyclic_class_saturates_at_cap(self):
        """x ≡ id o x makes the class represent unboundedly many terms;
        counting must report the cap, not loop."""
        egraph = EGraph()
        x = egraph.add(_t("age"))
        wrapped = egraph.add(_t("id o age"))
        egraph.merge(x, wrapped)
        egraph.rebuild()
        counts = egraph.represented_counts(cap=1000)
        assert counts[egraph.find(x)] == 1000
        assert egraph.represented_total(cap=1000) <= 1000 * len(counts)

    def test_default_cap_is_large(self):
        assert COUNT_CAP >= 10 ** 12


class TestDeterminism:
    def test_class_ids_sorted(self):
        egraph = EGraph()
        egraph.add(_t("iterate(in @ (id >< cars), pi2) ! P"))
        ids = egraph.class_ids()
        assert ids == sorted(ids)

    def test_identical_builds_identical_graphs(self):
        runs = []
        for _ in range(2):
            egraph = EGraph()
            root = egraph.add(_t("flat o iter(Kp(T), grgs o pi2)"))
            egraph.merge(egraph.class_of(_t("grgs")),
                         egraph.add(_t("cars")))
            egraph.rebuild()
            runs.append((egraph.enodes_allocated, egraph.class_count(),
                         sorted(egraph.represented_counts().values()),
                         egraph.best_terms()[egraph.find(root)]))
        assert runs[0] == runs[1]
