"""Golden-file regression pins for the paper's derivations.

The rendered derivations of Figures 4, 6 and the Section 4.1 pipeline
are committed under ``tests/golden/`` and compared verbatim: any change
to rule order, matching behavior, canonical forms or the pretty printer
that alters a paper derivation fails loudly here.  Regenerate the
files only after confirming the new behavior against the paper
(the generation snippet lives in this file's ``regenerate`` helper).
"""

import pathlib

import pytest

from repro.coko.hidden_join import untangle
from repro.coko.stdblocks import block_code_motion, block_t1k, block_t2k
from repro.rewrite.trace import Derivation
from repro.workloads.queries import paper_queries

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _current_renderings(rulebase):
    queries = paper_queries()
    outputs = {}

    derivation = Derivation("T1K (Figure 4)")
    block_t1k().transform(queries.t1k_source, rulebase,
                          derivation=derivation)
    outputs["t1k.txt"] = derivation.render()

    derivation = Derivation("T2K (Figure 4)")
    block_t2k().transform(queries.t2k_source, rulebase,
                          derivation=derivation)
    outputs["t2k.txt"] = derivation.render()

    derivation = Derivation("K4 code motion (Figure 6)")
    block_code_motion().transform(queries.k4, rulebase,
                                  derivation=derivation)
    outputs["fig6_k4.txt"] = derivation.render()

    _, derivation = untangle(queries.kg1, rulebase,
                             title="Garage query untangling (Section 4.1)")
    outputs["garage_untangle.txt"] = derivation.render()
    return outputs


@pytest.mark.parametrize("name", ["t1k.txt", "t2k.txt", "fig6_k4.txt",
                                  "garage_untangle.txt"])
def test_derivation_matches_golden(rulebase, name):
    current = _current_renderings(rulebase)[name]
    committed = (GOLDEN / name).read_text().rstrip("\n")
    assert current == committed, (
        f"derivation {name} changed; diff against tests/golden/{name} "
        "and regenerate only if the new form is still faithful to the "
        "paper")


def test_golden_files_contain_paper_landmarks():
    t2k = (GOLDEN / "t2k.txt").read_text()
    assert "[12^-1]" in t2k           # the paper's right-to-left rule 12
    garage = (GOLDEN / "garage_untangle.txt").read_text()
    for landmark in ("[17]", "[19]", "[20]", "[21]", "[24]"):
        assert landmark in garage
    assert "join(in @ (id >< cars)" in garage  # the KG2 join predicate
