"""Tests for the parallel batch layer: LRU caches, corpus generation,
the backoff scheduler, result codecs, and pool-vs-sequential parity."""

from __future__ import annotations

import pickle

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.parallel.batch import (BatchOptimizer, optimize_many,
                                  route_of, _initial_term)
from repro.parallel.cache import (LRUCache, ShardedLRUCache,
                                  merge_cache_info)
from repro.parallel.portable import (decode_plan, decode_result,
                                     encode_plan, encode_result)
from repro.optimizer.physical import InterpretPlan, JoinNestPlan
from repro.saturate.driver import SaturationBudget, Saturator
from repro.workloads.corpus import (CorpusConfig, corpus_stream,
                                    generate_corpus)
from repro.workloads.queries import paper_queries


# -- LRU caches --------------------------------------------------------------


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh a
        cache.put("c", 3)               # evicts b, not a
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_fifo_would_evict_differently(self):
        # The scenario where LRU beats FIFO: the oldest entry is hot.
        cache = LRUCache(max_size=3)
        for key in ("hot", "x", "y"):
            cache.put(key, key)
        for _ in range(5):
            assert cache.get("hot") == "hot"
        cache.put("z", "z")
        assert "hot" in cache and "x" not in cache

    def test_counters_and_info(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        info = cache.info()
        assert info == {"size": 1, "max_size": 4, "hits": 1,
                        "misses": 1, "evictions": 0}

    def test_peek_does_not_refresh(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        cache.put("c", 3)               # a is still LRU: evicted
        assert "a" not in cache

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)              # refresh + overwrite
        cache.put("c", 3)
        assert cache.get("a") == 10 and "b" not in cache

    def test_per_call_bound_override(self):
        cache = LRUCache(max_size=100)
        cache.put("a", 1)
        cache.put("b", 2, max_size=1)
        assert len(cache) == 1 and "b" in cache

    def test_clear_keeps_counters(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestShardedLRUCache:
    def test_routes_consistently(self):
        cache = ShardedLRUCache(max_size=64, shards=4)
        for key in range(50):
            assert cache.shard_of(key) == cache.shard_of(key)
        cache.put("k", "v")
        assert cache.get("k") == "v" and "k" in cache

    def test_global_capacity_bound(self):
        cache = ShardedLRUCache(max_size=64, shards=4)
        for key in range(10):
            cache.put(key, key, max_size=3)
        assert len(cache) == 3

    def test_merged_info(self):
        cache = ShardedLRUCache(max_size=8, shards=2)
        for key in range(6):
            cache.put(key, key)
        cache.get(0)
        cache.get("missing")
        info = cache.info()
        assert info["size"] == 6 and info["shards"] == 2
        assert info["hits"] == 1 and info["misses"] == 1
        assert len(cache.per_shard_info()) == 2

    def test_merge_cache_info_sums(self):
        merged = merge_cache_info([
            {"size": 2, "max_size": 4, "hits": 1, "misses": 0,
             "evictions": 0},
            {"size": 3, "max_size": 4, "hits": 2, "misses": 5,
             "evictions": 1, "extra": 9},
        ])
        assert merged == {"size": 5, "max_size": 8, "hits": 3,
                          "misses": 5, "evictions": 1}


# -- backoff scheduler -------------------------------------------------------


class TestBackoffScheduler:
    @pytest.fixture(scope="class")
    def pool(self, rulebase):
        return rulebase.group_compiled("saturate")

    def test_bans_recorded_and_skipped(self, engine, pool):
        queries = paper_queries()
        saturator = Saturator(engine, pool,
                              SaturationBudget(max_iterations=6))
        run = saturator.run([queries.kg1])
        assert run.report.rule_bans > 0
        assert run.report.banned_skips > 0
        assert "rule ban(s)" in run.report.summary()

    def test_disabled_backoff_reports_no_bans(self, engine, pool):
        queries = paper_queries()
        saturator = Saturator(
            engine, pool,
            SaturationBudget(max_iterations=4, backoff_threshold=0))
        run = saturator.run([queries.t2k_source])
        assert run.report.rule_bans == 0
        assert run.report.banned_skips == 0
        assert "rule ban(s)" not in run.report.summary()

    def test_backoff_preserves_saturation_outcome(self, engine, pool):
        # A small query whose search saturates: backoff must not change
        # the final e-graph's root-class membership.
        queries = paper_queries()
        budget = SaturationBudget(max_iterations=12)
        run_with = Saturator(engine, pool, budget).run(
            [queries.t1k_source])
        run_without = Saturator(
            engine, pool,
            SaturationBudget(max_iterations=12,
                             backoff_threshold=0)).run(
            [queries.t1k_source])
        assert run_with.report.saturated == run_without.report.saturated
        with_best = run_with.egraph.best_terms()[run_with.root_class]
        without_best = run_without.egraph.best_terms()[
            run_without.root_class]
        assert with_best is without_best

    def test_never_saturated_while_banned(self, engine, pool):
        # If the report says saturated, a full unbanned round made no
        # progress — exercised implicitly: saturated runs must report
        # at least one more iteration than the last ban round could
        # explain.  Cheap proxy: saturated implies no outstanding-ban
        # early exit, which would have shown as saturated=False.
        queries = paper_queries()
        run = Saturator(engine, pool,
                        SaturationBudget(max_iterations=20)).run(
            [queries.t1k_target])
        if run.report.saturated:
            assert run.report.iterations <= 20


# -- corpus ------------------------------------------------------------------


class TestCorpus:
    def test_distinct_and_deterministic(self):
        config = CorpusConfig(distinct=60)
        first = generate_corpus(config)
        second = generate_corpus(config)
        assert len(first) == 60
        assert len(set(first)) == 60
        assert all(a is b for a, b in zip(first, second))

    def test_stream_covers_corpus_per_pass(self):
        corpus = generate_corpus(CorpusConfig(distinct=10))
        stream = corpus_stream(corpus, 25, seed=5)
        assert len(stream) == 25
        assert set(stream[:10]) == set(corpus)
        assert set(stream[10:20]) == set(corpus)

    def test_stream_deterministic(self):
        corpus = generate_corpus(CorpusConfig(distinct=10))
        first = corpus_stream(corpus, 30, seed=9)
        second = corpus_stream(corpus, 30, seed=9)
        assert all(a is b for a, b in zip(first, second))

    def test_stream_validates_inputs(self):
        with pytest.raises(ValueError):
            corpus_stream([], 5)


# -- portable plan / result codecs -------------------------------------------


class TestResultCodec:
    def test_interpret_plan_roundtrip(self):
        queries = paper_queries()
        plan = InterpretPlan(queries.t2k_source)
        decoded = decode_plan(encode_plan(plan))
        assert isinstance(decoded, InterpretPlan)
        assert decoded.query is plan.query

    def test_joinnest_plan_roundtrip(self, db):
        queries = paper_queries()
        result = Optimizer().optimize(queries.kg1, db)
        assert isinstance(result.plan, JoinNestPlan)
        decoded = decode_plan(encode_plan(result.plan))
        assert isinstance(decoded, JoinNestPlan)
        assert decoded.query is result.plan.query
        assert decoded.join_pred is result.plan.join_pred
        assert decoded.unnest_count == result.plan.unnest_count
        assert decoded.execute(db) == result.plan.execute(db)

    def test_result_roundtrip_preserves_everything(self, db, rulebase):
        queries = paper_queries()
        result = Optimizer().optimize(queries.kg1, db)
        # Simulate the wire: the payload must survive pickling.
        payload = pickle.loads(pickle.dumps(encode_result(result)))
        decoded = decode_result(payload, rulebase, source=queries.kg1)
        assert decoded.initial is result.initial
        assert decoded.simplified is result.simplified
        assert decoded.untangled is result.untangled
        assert decoded.estimated_cost == result.estimated_cost
        assert type(decoded.plan) is type(result.plan)
        assert (decoded.derivation.rules_used()
                == result.derivation.rules_used())

    def test_route_is_stable(self):
        queries = paper_queries()
        payload = queries.kg1.to_portable()
        assert route_of(payload, 4) == route_of(payload, 4)
        rebuilt = pickle.loads(pickle.dumps(payload))
        assert route_of(rebuilt, 4) == route_of(payload, 4)


# -- batch runs --------------------------------------------------------------


def _results_match(a, b) -> bool:
    return (type(a.plan) is type(b.plan)
            and a.estimated_cost == b.estimated_cost
            and a.initial is b.initial
            and a.untangled is b.untangled
            and a.derivation.rules_used() == b.derivation.rules_used())


class TestBatchInProcess:
    def test_matches_sequential(self, tiny_db):
        corpus = generate_corpus(CorpusConfig(distinct=12))
        stream = corpus_stream(corpus, 24)
        sequential = Optimizer()
        expected = [sequential.optimize(q, tiny_db) for q in stream]
        report = optimize_many(stream, tiny_db, workers=1)
        assert report.mode == "in-process"
        assert len(report) == 24
        assert all(_results_match(e, r.result)
                   for e, r in zip(expected, report.results))

    def test_accepts_oql(self, tiny_db):
        oql = "select p.age from p in P where p.age > 25"
        report = optimize_many([oql], tiny_db, workers=1)
        expected = Optimizer().optimize(oql, tiny_db)
        assert _results_match(expected, report.results[0].result)

    def test_plan_cache_hits_on_repeats(self, tiny_db):
        corpus = generate_corpus(CorpusConfig(distinct=6))
        report = optimize_many(corpus_stream(corpus, 18), tiny_db,
                               workers=1)
        assert report.plan_cache["hits"] == 12

    def test_rejects_bad_inputs(self, tiny_db):
        with pytest.raises(TypeError):
            optimize_many([object()], tiny_db, workers=1)
        with pytest.raises(ValueError):
            optimize_many([], tiny_db, workers=1, search="nope")

    def test_empty_batch(self, tiny_db):
        report = optimize_many([], tiny_db, workers=1)
        assert len(report) == 0

    def test_normalize_helper(self):
        queries = paper_queries()
        assert _initial_term(queries.kg1) is queries.kg1


@pytest.mark.slow
class TestBatchPool:
    @pytest.fixture(scope="class")
    def pool_db(self):
        # A private database: other suites may decorate the shared
        # session fixtures with unpicklable callables, which (by
        # design) downgrades the pool to in-process mode — these tests
        # assert on pool mode itself, so they need a clean instance.
        from repro.schema.generator import tiny_database
        return tiny_database()

    @pytest.fixture(scope="class")
    def pool_report_and_expected(self, pool_db):
        corpus = generate_corpus(CorpusConfig(distinct=16))
        stream = corpus_stream(corpus, 32)
        sequential = Optimizer()
        expected = [sequential.optimize(q, pool_db) for q in stream]
        report = optimize_many(stream, pool_db, workers=2)
        return report, expected

    def test_pool_mode_used(self, pool_report_and_expected):
        report, _ = pool_report_and_expected
        assert report.mode == "pool"
        assert report.errors == []
        workers_used = {r.worker for r in report.results}
        assert workers_used <= {0, 1} and len(workers_used) == 2

    def test_results_bit_identical_to_sequential(
            self, pool_report_and_expected):
        report, expected = pool_report_and_expected
        assert all(_results_match(e, r.result)
                   for e, r in zip(expected, report.results))

    def test_shard_affinity_gives_cache_hits(
            self, pool_report_and_expected):
        report, _ = pool_report_and_expected
        # Every second occurrence hits the worker-resident cache.
        assert report.plan_cache["hits"] == 16
        assert sum(info["processed"]
                   for info in report.per_worker) == 32

    def test_warm_across_batches(self, pool_db):
        corpus = generate_corpus(CorpusConfig(distinct=8))
        with BatchOptimizer(pool_db, workers=2) as batch:
            first = batch.optimize_many(corpus)
            second = batch.optimize_many(corpus)
        assert (second.plan_cache["hits"]
                - first.plan_cache["hits"]) == len(corpus)

    def test_warmup_blocks_until_workers_serve(self, pool_db):
        corpus = generate_corpus(CorpusConfig(distinct=6))
        with BatchOptimizer(pool_db, workers=2) as batch:
            assert batch.warmup() is True
            assert batch.mode == "pool"
            report = batch.optimize_many(corpus)
        assert report.mode == "pool"
        assert report.errors == []

    def test_warmup_in_process_is_noop(self, pool_db):
        with BatchOptimizer(pool_db, workers=1) as batch:
            assert batch.warmup() is False
            assert batch.mode == "in-process"
