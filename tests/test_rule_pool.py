"""Verification of the whole rule pool with the Larch substitute.

Every shipped rule is checked on randomized well-typed instantiations
(one test per rule, so failures name the rule).  The paper's literal
rule 7 must be *refuted* — the checker is only trustworthy if it can
reject unsound rules, so deliberately wrong rules are included too
(failure injection)."""

import pytest

from repro.core.errors import VerificationError
from repro.core.terms import Sort
from repro.larch.checker import RuleChecker, check_rule
from repro.rewrite.rule import rule
from repro.rules.basic import PAPER_LITERAL_RULE_7
from repro.rules.registry import standard_rulebase

_RULEBASE = standard_rulebase()
_CHECKER = RuleChecker(trials=60)

_ALL_RULE_NAMES = [r.name for r in _RULEBASE.all_rules()]


@pytest.mark.parametrize("name", _ALL_RULE_NAMES)
def test_rule_is_sound(name):
    report = _CHECKER.check(_RULEBASE.get(name))
    if not report.passed:
        pytest.fail(f"rule {name} refuted:\n"
                    + report.counterexample.render())


_BIDIRECTIONAL = [r.name for r in _RULEBASE.all_rules()
                  if r.bidirectional
                  and not (r.lhs.metavars() - r.rhs.metavars())
                  and r.reverse_type_safe]


@pytest.mark.parametrize("name", _BIDIRECTIONAL)
def test_reversed_rule_is_sound(name):
    """Bidirectional rules must be sound right-to-left too (the paper
    uses rules 2, 12 and 14 that way)."""
    report = _CHECKER.check(_RULEBASE.get(name).reversed())
    assert report.passed, f"reverse of {name} refuted"


class TestFailureInjection:
    def test_paper_literal_rule7_refuted(self):
        """inv(gt) == leq is unsound under the converse reading: take
        x = y (2 > 2 is false but 2 <= 2 is true)."""
        with pytest.raises(VerificationError) as excinfo:
            check_rule(PAPER_LITERAL_RULE_7, trials=300)
        assert excinfo.value.counterexample is not None

    def test_wrong_projection_refuted(self):
        bad = rule("bad-proj", "pi1 o <$f, $g>", "$g", bidirectional=False)
        with pytest.raises(VerificationError):
            check_rule(bad, trials=300)

    def test_wrong_fusion_refuted(self):
        # iterate fusion with the predicates swapped
        bad = rule("bad-fuse", "iterate($p, $f) o iterate($q, $g)",
                   "iterate($p & ($q @ $g), $f o $g)", bidirectional=False)
        with pytest.raises(VerificationError):
            check_rule(bad, trials=300)

    def test_wrong_demorgan_refuted(self):
        bad = rule("bad-dm", "~($p & $q)", "~$p & ~$q", sort=Sort.PRED,
                   bidirectional=False)
        with pytest.raises(VerificationError):
            check_rule(bad, trials=300)

    def test_nest_misprint_refuted(self):
        """Rule 19 as literally printed (nest(pi1, pi1)) is ill-typed or
        unsound; our checker rejects the closest well-typed reading."""
        bad = rule("bad-nest19",
                   "iterate(Kp(T), <id, Kf($B)>) ! $A",
                   "nest(pi1, pi1) o <join(Kp(T), id), pi1> ! [$A, $B]",
                   sort=Sort.OBJ, bidirectional=False)
        with pytest.raises(VerificationError):
            check_rule(bad, trials=300)

    def test_report_rendering(self):
        from repro.larch.report import pool_report, render_report
        reports = pool_report([_RULEBASE.get("r1"), _RULEBASE.get("r11")],
                              trials=20)
        text = render_report(reports)
        assert "r1" in text and "2/2 rules verified" in text


class TestPoolShape:
    def test_paper_rules_all_present(self):
        for number in range(1, 25):
            assert _RULEBASE.by_number(number) is not None

    def test_pool_size_reported(self):
        """The paper's pool had 500+ proved rules; ours is smaller but
        must stay substantial (EXPERIMENTS.md records the count)."""
        assert len(_RULEBASE) >= 100

    def test_groups_nonempty(self):
        for group in ("fig4", "fig5", "fig8", "cleanup", "simplify",
                      "pool", "conditional", "pair-to-cross"):
            assert _RULEBASE.group(group)

    def test_simplify_group_terminates_quickly(self, rulebase, tiny_db):
        """The simplify group must be terminating (no expansionary or
        structural rules)."""
        from repro.core.parser import parse_obj
        from repro.rewrite.engine import Engine
        query = parse_obj(
            "iterate(Kp(T), id o city o id) o iterate(Kp(T) & Kp(T), "
            "addr o id) ! P")
        engine = Engine()
        result = engine.normalize(query, rulebase.group("simplify"),
                                  max_steps=200)
        again = engine.normalize(result, rulebase.group("simplify"),
                                 max_steps=5)
        assert result == again  # a true fixpoint, not a step cap
