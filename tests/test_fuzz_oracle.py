"""The differential oracle: every optimizer configuration must agree
with direct evaluation on generated queries, and — just as important —
the oracle must actually *catch* a broken optimizer.  The mutation
tests strip the precondition guard off ``count-map-inj`` and assert the
resulting unsound rewrite is detected, shrunk to a minimal term, and
reported with a replay seed."""

from __future__ import annotations

import pytest

from repro.core import constructors as C
from repro.core.parser import parse_query
from repro.core.pretty import pretty
from repro.core.terms import Term
from repro.core.types import well_typed
from repro.fuzz.generator import FuzzConfig, QueryGenerator
from repro.fuzz.oracle import (DifferentialOracle, bag_equal,
                               default_matrix, sequential_matrix,
                               unguarded_rulebase)
from repro.fuzz.shrink import _positions, _replace, shrink, sort_of
from repro.schema.paper_schema import paper_schema

#: Weights that steer generation toward ``count o iterate(...)`` shapes
#: — the territory where an unguarded ``count-map-inj`` is unsound.
#: Seed 1405 under these weights produces a natural divergence.
MUTANT_WEIGHTS = {"iterate": 8.0, "count": 8.0, "const_p": 6.0,
                  "const": 3.0, "compose": 3.0, "chain": 0.5,
                  "cond": 0.3, "oplus": 0.3}
MUTANT_SEED = 1405


def test_default_matrix_covers_engines_and_searches():
    configs = default_matrix(batch_workers=2)
    names = {c.name for c in configs}
    assert len(names) == len(configs) >= 6
    engines = {c.engine for c in configs}
    searches = {c.search for c in configs}
    assert engines == {"linear", "indexed", "compiled"}
    assert searches == {"greedy", "saturate"}
    assert any(c.batch for c in configs)
    assert {c.name for c in sequential_matrix()} <= names


def test_bag_equal_is_type_sensitive():
    from repro.core.bags import KBag
    from repro.core.lists import KList
    assert bag_equal(frozenset({1, 2}), frozenset({2, 1}))
    assert bag_equal(KBag.of([1, 1, 2]), KBag.of([2, 1, 1]))
    assert not bag_equal(KBag.of([1, 2]), frozenset({1, 2}))
    assert not bag_equal(KBag.of([1, 1]), KBag.of([1]))
    assert not bag_equal(KList([1, 2]), KList([2, 1]))


def test_matrix_agrees_on_generated_queries():
    """The acceptance property in miniature: a seeded slice of the
    generator stream through the full matrix, zero divergences.  (CI
    runs the 200-query version via ``repro.cli fuzz``.)"""
    with DifferentialOracle() as oracle:
        report = oracle.run(count=12, seed=42)
    assert report.ok, report.summary()
    assert report.queries == 12
    assert len(report.configs) >= 6
    for stats in report.per_config.values():
        assert stats.queries == 12


def test_oracle_records_per_config_stats():
    with DifferentialOracle(configs=sequential_matrix()) as oracle:
        report = oracle.run(count=5, seed=3)
    assert report.ok
    for name, stats in report.per_config.items():
        summary = stats.summary()
        assert stats.queries == 5, name
        assert stats.elapsed >= 0.0
        assert "cost" in summary


def test_oracle_time_budget_stops_early():
    with DifferentialOracle(configs=sequential_matrix()[:1]) as oracle:
        report = oracle.run(count=10_000, seed=0, seconds=0.0)
    assert report.queries <= 1


# ---------------------------------------------------------------------------
# shrinker unit tests


def test_positions_and_replace_roundtrip():
    query = parse_query("count o iterate(Kp(T), Kf(1)) ! P")
    positions = list(_positions(query))
    assert ((), query) in positions
    for path, sub in positions:
        walked = query
        for index in path:
            walked = walked.args[index]
        assert walked == sub
        assert _replace(query, path, sub) == query
    last_path, _ = positions[-1]
    assert _replace(query, last_path, C.lit(0)) != query


def test_shrink_preserves_sort_and_well_typedness():
    """Shrinking an artificial 'divergence' (query mentions join)
    yields a strictly smaller query that is still well-typed and still
    satisfies the predicate."""
    schema = paper_schema()

    def mentions_join(term: Term) -> bool:
        if term.op == "join":
            return True
        return any(mentions_join(a) for a in term.args)

    # find a join-bearing generated query to shrink
    query = None
    for seed in range(200):
        candidate = QueryGenerator(FuzzConfig(seed=seed)).query()
        if mentions_join(candidate) and candidate.size() > 10:
            query = candidate
            break
    assert query is not None
    small = shrink(query, mentions_join, schema)
    assert mentions_join(small)
    assert well_typed(small, schema)
    assert small.size() < query.size()
    assert sort_of(small) == sort_of(query)


def test_shrink_returns_input_when_not_diverging():
    query = parse_query("id ! P")
    assert shrink(query, lambda t: False, paper_schema()) == query


# ---------------------------------------------------------------------------
# mutation tests: the oracle must catch a deliberately broken rulebase


def test_unguarded_rulebase_strips_guard_and_regroups():
    from repro.rules.registry import standard_rulebase
    base = standard_rulebase()
    mutated = unguarded_rulebase("count-map-inj", base)
    [original] = [r for r in base.all_rules()
                  if r.name == "count-map-inj"]
    [mutant] = [r for r in mutated.all_rules()
                if r.name == "count-map-inj"]
    assert original.preconditions and not mutant.preconditions
    simplify = {r.name for r in mutated.group("simplify")}
    assert "count-map-inj" in simplify
    with pytest.raises(ValueError):
        unguarded_rulebase("no-such-rule")


def test_mutation_is_caught_and_shrunk_to_minimal_term():
    """Disable the injectivity guard on ``count-map-inj`` and feed the
    oracle a bloated query whose count is NOT preserved by the mapped
    function.  Every sequential config must diverge, and the shrinker
    must reduce the reproducer to the minimal guard-violating core."""
    bloated = parse_query(
        "id o count o iterate(Kp(T), Kf(1)) o iterate(Kp(T), id) ! P")
    minimal = parse_query("count o iterate(Kp(T), Kf(1)) ! P")
    with DifferentialOracle(configs=sequential_matrix(),
                            rulebase=unguarded_rulebase("count-map-inj"),
                            ) as oracle:
        divergences = oracle.check(bloated)
    assert len(divergences) == len(sequential_matrix())
    for div in divergences:
        assert not bag_equal(div.expected, div.actual)
        assert div.minimal == minimal, pretty(div.minimal)
        assert pretty(minimal) in div.report()


def test_mutation_is_found_by_generation_with_replay_seed():
    """The full loop: type-directed generation (steered weights) finds
    the unsound rewrite on its own, and the divergence carries the
    replay seed the CLI prints for reproduction."""
    fuzz_config = FuzzConfig(seed=MUTANT_SEED, weights=MUTANT_WEIGHTS)
    with DifferentialOracle(configs=sequential_matrix(),
                            rulebase=unguarded_rulebase("count-map-inj"),
                            ) as oracle:
        report = oracle.run(count=1, seed=MUTANT_SEED,
                            fuzz_config=fuzz_config)
    assert not report.ok
    div = report.divergences[0]
    assert div.seed == MUTANT_SEED
    assert f"--seed {MUTANT_SEED}" in div.replay()
    assert div.shrunk is not None
    assert well_typed(div.minimal, paper_schema())
    assert div.minimal.size() <= div.query.size()


def test_healthy_rulebase_has_no_divergence_on_mutant_seed():
    """The same steered seed is clean when the guard is in place — the
    divergence above is caused by the mutation, not the query."""
    fuzz_config = FuzzConfig(seed=MUTANT_SEED, weights=MUTANT_WEIGHTS)
    with DifferentialOracle(configs=sequential_matrix()) as oracle:
        report = oracle.run(count=1, seed=MUTANT_SEED,
                            fuzz_config=fuzz_config)
    assert report.ok, report.summary()
