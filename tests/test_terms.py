"""Unit tests for the KOLA term representation."""

import pytest

from repro.core import constructors as C
from repro.core.errors import TermError, UnknownOperatorError
from repro.core.terms import Sort, Term, fun_var, meta, mk, obj_var, \
    pred_var, sort_of


class TestConstruction:
    def test_simple_leaf(self):
        term = C.id_()
        assert term.op == "id"
        assert term.args == ()
        assert term.is_leaf()

    def test_nested(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.op == "compose"
        assert term.args[0].label == "city"

    def test_unknown_operator_rejected(self):
        with pytest.raises(UnknownOperatorError):
            mk("frobnicate")

    def test_wrong_arity_rejected(self):
        with pytest.raises(TermError, match="expects 2"):
            mk("compose", C.id_())

    def test_wrong_sort_rejected(self):
        # compose takes functions, not predicates
        with pytest.raises(TermError, match="sort"):
            C.compose(C.eq(), C.id_())

    def test_pred_former_rejects_function(self):
        with pytest.raises(TermError):
            C.conj(C.id_(), C.eq())

    def test_label_required(self):
        with pytest.raises(TermError, match="label"):
            mk("prim")

    def test_label_forbidden(self):
        with pytest.raises(TermError, match="label"):
            mk("id", label="x")

    def test_non_term_argument_rejected(self):
        with pytest.raises(TermError, match="not a Term"):
            mk("compose", C.id_(), "id")  # type: ignore[arg-type]


class TestImmutabilityAndEquality:
    def test_immutable(self):
        term = C.id_()
        with pytest.raises(AttributeError):
            term.op = "pi1"  # type: ignore[misc]

    def test_structural_equality(self):
        a = C.compose(C.prim("city"), C.prim("addr"))
        b = C.compose(C.prim("city"), C.prim("addr"))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_label(self):
        assert C.prim("city") != C.prim("addr")

    def test_inequality_by_op(self):
        assert C.pi1() != C.pi2()

    def test_usable_as_dict_key(self):
        table = {C.id_(): 1, C.pi1(): 2}
        assert table[C.id_()] == 1

    def test_not_equal_to_other_types(self):
        assert C.id_() != "id"
        assert not (C.id_() == 42)


class TestSorts:
    def test_function_sort(self):
        assert sort_of(C.iterate(C.eq(), C.id_())) is Sort.FUN

    def test_predicate_sort(self):
        assert sort_of(C.oplus(C.eq(), C.id_())) is Sort.PRED

    def test_object_sort(self):
        assert sort_of(C.invoke(C.id_(), C.lit(3))) is Sort.OBJ

    def test_metavar_sorts(self):
        assert sort_of(fun_var("f")) is Sort.FUN
        assert sort_of(pred_var("p")) is Sort.PRED
        assert sort_of(obj_var("x")) is Sort.OBJ
        assert sort_of(meta("a")) is Sort.ANY

    def test_sort_property(self):
        assert C.flat().sort is Sort.FUN


class TestStructureHelpers:
    def test_size(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.size() == 3

    def test_depth(self):
        term = C.compose(C.compose(C.id_(), C.id_()), C.id_())
        assert term.depth() == 3
        assert C.id_().depth() == 1

    def test_subterms_preorder(self):
        term = C.pair(C.pi1(), C.pi2())
        ops = [t.op for t in term.subterms()]
        assert ops == ["pair", "pi1", "pi2"]

    def test_contains(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.contains(C.prim("addr"))
        assert not term.contains(C.prim("age"))

    def test_with_args_identity_shortcut(self):
        term = C.compose(C.id_(), C.id_())
        assert term.with_args(term.args) is term

    def test_metavars(self):
        term = C.compose(fun_var("f"), fun_var("g"))
        assert {name for name, _ in term.metavars()} == {"f", "g"}

    def test_is_ground(self):
        assert C.id_().is_ground()
        assert not fun_var("f").is_ground()

    def test_meta_requires_name(self):
        with pytest.raises(TermError):
            meta("")


class TestInterning:
    """Hash-consing: structural equality is pointer identity."""

    def test_equal_terms_are_identical(self):
        a = C.compose(C.prim("city"), C.prim("addr"))
        b = C.compose(C.prim("city"), C.prim("addr"))
        assert a is b

    def test_rebuilt_subterm_shares_structure(self):
        inner = C.compose(C.prim("city"), C.prim("addr"))
        outer = C.iterate(C.eq(), inner)
        assert outer.args[1] is inner
        assert outer.with_args(outer.args) is outer

    def test_cross_type_labels_not_conflated(self):
        assert C.lit(False) is not C.lit(0)
        assert C.lit(1) is not C.lit(1.0)
        assert C.lit(frozenset({True})) is not C.lit(frozenset({1}))
        assert C.lit(frozenset({True})).label == frozenset({True})

    def test_identity_equality_still_structural(self):
        # identity-first __eq__ must agree with structural equality
        assert C.prim("city") == C.prim("city")
        assert C.prim("city") != C.prim("addr")
        assert C.id_() != "id"

    def test_cached_structure_queries(self):
        term = C.compose(C.prim("city"), C.compose(C.prim("addr"),
                                                   C.id_()))
        assert term.size() == 5
        assert term.depth() == 3
        assert term.ops == {"compose", "prim", "id"}
        assert term.is_ground()
        assert not C.compose(fun_var("f"), C.id_()).is_ground()


class TestDeepChains:
    """Regression: translator output for Figure 7 pipelines can nest
    thousands of compose levels; structure queries must not recurse."""

    def test_depth_on_5k_chain(self):
        from repro.rewrite.pattern import build_chain, flatten_compose
        factors = [C.prim(f"f{i}") for i in range(5000)]
        chain = build_chain(factors)
        assert chain.depth() == 5000
        assert chain.size() == 2 * 5000 - 1
        assert chain.is_ground()
        assert len(flatten_compose(chain)) == 5000

    def test_depth_on_5k_left_nested(self):
        left = C.prim("f0")
        for i in range(1, 5000):
            left = C.compose(left, C.prim(f"f{i}"))
        assert left.depth() == 5000
        assert left.ops == {"compose", "prim"}

    def test_canon_on_5k_left_nested(self):
        from repro.rewrite.pattern import canon, flatten_compose
        left = C.prim("g0")
        for i in range(1, 5000):
            left = C.compose(left, C.prim(f"g{i}"))
        chain = canon(left)
        assert canon(chain) is chain  # idempotent
        assert len(flatten_compose(chain)) == 5000
        assert chain.args[0] == C.prim("g0")  # right-associated

    def test_normalize_on_5k_chain(self):
        # A compose-headed rule would enumerate O(n^2) chain windows, so
        # use an iterate-headed one: the run exercises canon + dispatch
        # on the full 5k-deep term without quadratic window matching.
        from repro.core.terms import Sort
        from repro.rewrite.engine import Engine
        from repro.rewrite.rule import rule
        deep_rule = rule("deep-beta", "id ! $x", "$x", sort=Sort.OBJ,
                         bidirectional=False)
        chain = C.prim("h0")
        for i in range(1, 5000):
            chain = C.compose(chain, C.prim(f"h{i}"))
        result = Engine().normalize_result(chain, [deep_rule], max_steps=3)
        assert result.reached_fixpoint
