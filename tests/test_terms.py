"""Unit tests for the KOLA term representation."""

import pytest

from repro.core import constructors as C
from repro.core.errors import TermError, UnknownOperatorError
from repro.core.terms import Sort, Term, fun_var, meta, mk, obj_var, \
    pred_var, sort_of


class TestConstruction:
    def test_simple_leaf(self):
        term = C.id_()
        assert term.op == "id"
        assert term.args == ()
        assert term.is_leaf()

    def test_nested(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.op == "compose"
        assert term.args[0].label == "city"

    def test_unknown_operator_rejected(self):
        with pytest.raises(UnknownOperatorError):
            mk("frobnicate")

    def test_wrong_arity_rejected(self):
        with pytest.raises(TermError, match="expects 2"):
            mk("compose", C.id_())

    def test_wrong_sort_rejected(self):
        # compose takes functions, not predicates
        with pytest.raises(TermError, match="sort"):
            C.compose(C.eq(), C.id_())

    def test_pred_former_rejects_function(self):
        with pytest.raises(TermError):
            C.conj(C.id_(), C.eq())

    def test_label_required(self):
        with pytest.raises(TermError, match="label"):
            mk("prim")

    def test_label_forbidden(self):
        with pytest.raises(TermError, match="label"):
            mk("id", label="x")

    def test_non_term_argument_rejected(self):
        with pytest.raises(TermError, match="not a Term"):
            mk("compose", C.id_(), "id")  # type: ignore[arg-type]


class TestImmutabilityAndEquality:
    def test_immutable(self):
        term = C.id_()
        with pytest.raises(AttributeError):
            term.op = "pi1"  # type: ignore[misc]

    def test_structural_equality(self):
        a = C.compose(C.prim("city"), C.prim("addr"))
        b = C.compose(C.prim("city"), C.prim("addr"))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_label(self):
        assert C.prim("city") != C.prim("addr")

    def test_inequality_by_op(self):
        assert C.pi1() != C.pi2()

    def test_usable_as_dict_key(self):
        table = {C.id_(): 1, C.pi1(): 2}
        assert table[C.id_()] == 1

    def test_not_equal_to_other_types(self):
        assert C.id_() != "id"
        assert not (C.id_() == 42)


class TestSorts:
    def test_function_sort(self):
        assert sort_of(C.iterate(C.eq(), C.id_())) is Sort.FUN

    def test_predicate_sort(self):
        assert sort_of(C.oplus(C.eq(), C.id_())) is Sort.PRED

    def test_object_sort(self):
        assert sort_of(C.invoke(C.id_(), C.lit(3))) is Sort.OBJ

    def test_metavar_sorts(self):
        assert sort_of(fun_var("f")) is Sort.FUN
        assert sort_of(pred_var("p")) is Sort.PRED
        assert sort_of(obj_var("x")) is Sort.OBJ
        assert sort_of(meta("a")) is Sort.ANY

    def test_sort_property(self):
        assert C.flat().sort is Sort.FUN


class TestStructureHelpers:
    def test_size(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.size() == 3

    def test_depth(self):
        term = C.compose(C.compose(C.id_(), C.id_()), C.id_())
        assert term.depth() == 3
        assert C.id_().depth() == 1

    def test_subterms_preorder(self):
        term = C.pair(C.pi1(), C.pi2())
        ops = [t.op for t in term.subterms()]
        assert ops == ["pair", "pi1", "pi2"]

    def test_contains(self):
        term = C.compose(C.prim("city"), C.prim("addr"))
        assert term.contains(C.prim("addr"))
        assert not term.contains(C.prim("age"))

    def test_with_args_identity_shortcut(self):
        term = C.compose(C.id_(), C.id_())
        assert term.with_args(term.args) is term

    def test_metavars(self):
        term = C.compose(fun_var("f"), fun_var("g"))
        assert {name for name, _ in term.metavars()} == {"f", "g"}

    def test_is_ground(self):
        assert C.id_().is_ground()
        assert not fun_var("f").is_ground()

    def test_meta_requires_name(self):
        with pytest.raises(TermError):
            meta("")
