"""Tests for aggregates and the count-bug study (paper Section 1.2)."""

import pytest

from repro.core import constructors as C
from repro.core.bags import KBag
from repro.core.errors import EvalError
from repro.core.eval import apply_fn, eval_obj
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.types import INT, infer
from repro.core.values import KPair, kset
from repro.larch.checker import RuleChecker
from repro.rewrite.pattern import instantiate
from repro.rules.aggregates import (AGGREGATE_RULES, COUNT_BUG,
                                    COUNT_UNNEST, UNSOUND_COUNT_DISTINCT,
                                    UNSOUND_SUM_DISTINCT)


class TestAggregateSemantics:
    def test_count(self):
        assert apply_fn(C.count(), kset([1, 2, 3])) == 3
        assert apply_fn(C.count(), kset([])) == 0

    def test_bag_count(self):
        assert apply_fn(C.bag_count(), KBag.of([1, 1, 2])) == 3

    def test_ssum(self):
        assert apply_fn(C.ssum(), kset([1, 2, 3])) == 6
        assert apply_fn(C.ssum(), kset([])) == 0

    def test_bag_sum_counts_duplicates(self):
        assert apply_fn(C.bag_sum(), KBag.of([3, 3])) == 6
        assert apply_fn(C.ssum(), kset([3, 3])) == 3  # set collapses

    def test_plus(self):
        assert apply_fn(C.plus(), KPair(2, 3)) == 5

    def test_domain_errors(self):
        with pytest.raises(EvalError):
            apply_fn(C.ssum(), kset(["a"]))
        with pytest.raises(EvalError):
            apply_fn(C.plus(), KPair(1, "b"))

    def test_types(self):
        assert infer(parse_fun("count o iterate(Kp(T), age)")).args[1] == INT
        assert infer(parse_fun("plus o (count >< count)")).args[1] == INT

    def test_parser_round_trip(self):
        from repro.core.pretty import pretty
        term = parse_fun("plus o (count >< bag_count)")
        assert parse_fun(pretty(term)) == term


class TestAggregateRules:
    @pytest.mark.parametrize("name", [r.name for r in AGGREGATE_RULES])
    def test_rule_sound(self, name):
        one_rule = next(r for r in AGGREGATE_RULES if r.name == name)
        report = RuleChecker(trials=60).check(one_rule)
        assert report.passed, report.counterexample.render()

    def test_unsound_aggregate_rules_refuted(self):
        for bad in (UNSOUND_SUM_DISTINCT, UNSOUND_COUNT_DISTINCT):
            report = RuleChecker(trials=400).check(bad)
            assert not report.passed, bad.name


class TestCountBug:
    """The paper's Section 1.2 example of why rules must be provable."""

    def _correlated_count_query(self):
        """{ [p, |{q in P : q.age > p.age}|] | p in P } — 'how many
        people are older than each person'."""
        return parse_obj(
            "iterate(Kp(T), <id, count o iter(gt @ <age o pi2, age o pi1>,"
            " pi2) o <id, Kf(P)>>) ! P")

    def test_correct_unnesting_on_data(self, tiny_db):
        bindings = {
            "p": parse_pred("gt @ <age o pi2, age o pi1>"),
            "A": C.setname("P"), "B": C.setname("P"),
        }
        lhs = instantiate(COUNT_UNNEST.lhs, bindings)
        rhs = instantiate(COUNT_UNNEST.rhs, bindings)
        assert eval_obj(lhs, tiny_db) == eval_obj(rhs, tiny_db)

    def test_buggy_unnesting_loses_rows(self, tiny_db):
        """The oldest person has zero older people — the buggy plan
        drops their row entirely."""
        bindings = {"p": parse_pred("gt @ <age o pi2, age o pi1>"),
                    "A": C.setname("P"), "B": C.setname("P")}
        correct = eval_obj(instantiate(COUNT_BUG.lhs, bindings), tiny_db)
        buggy = eval_obj(instantiate(COUNT_BUG.rhs, bindings), tiny_db)
        assert buggy != correct
        assert len(buggy) < len(correct)
        # exactly the zero-count rows are missing
        missing = correct - buggy
        assert missing and all(row.snd == 0 for row in missing)

    def test_checker_refutes_count_bug(self):
        report = RuleChecker(trials=400).check(COUNT_BUG)
        assert not report.passed
        assert report.trials < 50  # found fast

    def test_checker_verifies_correct_rule(self):
        report = RuleChecker(trials=60).check(COUNT_UNNEST)
        assert report.passed

    def test_null_free_nest_is_the_fix(self, tiny_db):
        """Spell out *why* the correct version works: nest's second
        argument restores partnerless outer elements with empty groups
        (the paper's Section 3 design)."""
        persons = tiny_db.collection("P")
        join_term = C.join(parse_pred("gt @ <age o pi2, age o pi1>"),
                           C.id_())
        joined = apply_fn(join_term, KPair(persons, persons), tiny_db)
        grouped = apply_fn(C.nest(C.pi1(), C.pi2()),
                           KPair(joined, persons), tiny_db)
        assert {pair.fst for pair in grouped} == set(persons)
