"""Unit tests for the runtime value domain."""

import pytest

from repro.core.errors import EvalError
from repro.core.values import (EMPTY_SET, Instance, KPair, as_bool, as_pair,
                               as_set, freeze, kset, value_repr)


class TestKPair:
    def test_equality(self):
        assert KPair(1, 2) == KPair(1, 2)
        assert KPair(1, 2) != KPair(2, 1)

    def test_hash_consistency(self):
        assert hash(KPair(1, 2)) == hash(KPair(1, 2))

    def test_not_a_tuple(self):
        assert KPair(1, 2) != (1, 2)

    def test_iteration(self):
        fst, snd = KPair("a", "b")
        assert (fst, snd) == ("a", "b")

    def test_nested_pairs_hashable(self):
        outer = KPair(KPair(1, 2), frozenset({3}))
        assert outer in {outer}


class TestInstance:
    def test_identity_by_adt_and_oid(self):
        a, b = Instance("Person", 1), Instance("Person", 1)
        assert a == b and hash(a) == hash(b)
        assert a != Instance("Vehicle", 1)
        assert a != Instance("Person", 2)

    def test_attributes(self):
        person = Instance("Person", 1)
        person.set_attr("age", 30)
        assert person.get("age") == 30
        assert person.attrs() == {"age": 30}

    def test_missing_attribute(self):
        with pytest.raises(EvalError, match="no attribute"):
            Instance("Person", 1).get("age")

    def test_repr(self):
        assert repr(Instance("Person", 3)) == "Person#3"


class TestCoercions:
    def test_as_pair(self):
        assert as_pair(KPair(1, 2)).fst == 1
        with pytest.raises(EvalError, match="expected a pair in pi1"):
            as_pair(3, "pi1")

    def test_as_set(self):
        assert as_set(frozenset({1})) == {1}
        with pytest.raises(EvalError, match="expected a set"):
            as_set([1])

    def test_as_bool(self):
        assert as_bool(True) is True
        with pytest.raises(EvalError, match="expected a boolean"):
            as_bool(1)


class TestFreeze:
    def test_list_becomes_frozenset(self):
        assert freeze([1, 2, 2]) == frozenset({1, 2})

    def test_tuple_becomes_pair(self):
        assert freeze((1, 2)) == KPair(1, 2)

    def test_nested(self):
        value = freeze([(1, [2, 3])])
        assert value == frozenset({KPair(1, frozenset({2, 3}))})

    def test_bad_tuple_length(self):
        with pytest.raises(EvalError):
            freeze((1, 2, 3))

    def test_scalars_pass_through(self):
        assert freeze(7) == 7


class TestValueRepr:
    def test_deterministic_set_order(self):
        value = kset([3, 1, 2])
        assert value_repr(value) == "{1, 2, 3}"

    def test_truncation(self):
        value = kset(range(20))
        text = value_repr(value, limit=3)
        assert text.endswith(", ...}")

    def test_pair(self):
        assert value_repr(KPair(1, kset([2]))) == "[1, {2}]"

    def test_empty_set_constant(self):
        assert EMPTY_SET == frozenset()
