"""Unit tests for the type language and inference."""

import pytest

from repro.core import constructors as C
from repro.core.errors import TypeInferenceError
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.terms import fun_var, obj_var, pred_var
from repro.core.types import (BOOL, INT, STR, Inferencer, TCon,
                              check_rule_types, fun_t, infer, pair_t,
                              parse_type, pred_t, set_t, well_typed)
from repro.core.values import Instance, KPair, kset
from repro.schema.paper_schema import paper_schema


@pytest.fixture(scope="module")
def schema():
    return paper_schema()


class TestParseType:
    def test_base(self):
        assert parse_type("Int") == INT

    def test_nested(self):
        assert parse_type("Set(Pair(Person, Int))") == set_t(
            pair_t(TCon("Person"), INT))

    def test_errors(self):
        with pytest.raises(TypeInferenceError):
            parse_type("Set(")
        with pytest.raises(TypeInferenceError):
            parse_type("Set(Int) junk")


class TestInference:
    def test_id_polymorphic(self):
        t = infer(C.id_())
        assert isinstance(t, TCon) and t.name == "Fun"
        assert t.args[0] == t.args[1]

    def test_composition_chains_types(self, schema):
        t = infer(parse_fun("city o addr"), schema)
        assert t == fun_t(TCon("Person"), STR)

    def test_ill_typed_composition(self, schema):
        assert not well_typed(parse_fun("age o city"), schema)

    def test_iterate(self, schema):
        t = infer(parse_fun("iterate(Kp(T), age)"), schema)
        assert t == fun_t(set_t(TCon("Person")), set_t(INT))

    def test_whole_query(self, schema):
        t = infer(parse_obj("iterate(Kp(T), city o addr) ! P"), schema)
        assert t == set_t(STR)

    def test_test_is_bool(self, schema):
        t = infer(parse_obj("gt ? [1, 2]"), schema)
        assert t == BOOL

    def test_invoke_mismatch(self, schema):
        # applying a Person-function to a set of Vehicles
        assert not well_typed(parse_obj("iterate(Kp(T), age) ! V"), schema)

    def test_join_type(self, schema):
        t = infer(parse_fun("join(in @ (id >< cars), (id >< grgs))"), schema)
        assert t == fun_t(
            pair_t(set_t(TCon("Vehicle")), set_t(TCon("Person"))),
            set_t(pair_t(TCon("Vehicle"), set_t(TCon("Address")))))

    def test_nest_unnest(self, schema):
        nest_t = infer(parse_fun("nest(pi1, pi2)"))
        assert isinstance(nest_t, TCon) and nest_t.name == "Fun"
        t = infer(parse_fun("unnest(pi1, pi2)"))
        assert isinstance(t, TCon) and t.name == "Fun"

    def test_unknown_prim(self, schema):
        with pytest.raises(TypeInferenceError, match="unknown primitive"):
            infer(parse_fun("salary"), schema)

    def test_occurs_check(self):
        # <id, id> o <id, id>: Pair(a,a) = a is an infinite type
        term = C.compose(C.pair(C.id_(), C.id_()), C.id_())
        inferencer = Inferencer()
        t = inferencer.infer(term)
        with pytest.raises(TypeInferenceError, match="infinite|unify"):
            inferencer.unify(t.args[0], t)


class TestLiteralTyping:
    def test_scalars(self):
        assert infer(C.lit(3)) == INT
        assert infer(C.lit("x")) == STR
        assert infer(C.true()) == BOOL
        assert infer(C.lit(1.5)) == TCon("Float")

    def test_bool_is_not_int(self):
        assert infer(C.true()) == BOOL  # bool checked before int

    def test_set_literal(self):
        assert infer(C.lit(kset([1, 2]))) == set_t(INT)

    def test_heterogeneous_set_rejected(self):
        with pytest.raises(TypeInferenceError, match="heterogeneous"):
            infer(C.lit(kset([1, "a"])))

    def test_pair_literal(self):
        assert infer(C.lit(KPair(1, "a"))) == pair_t(INT, STR)

    def test_instance_literal(self):
        assert infer(C.lit(Instance("Person", 1))) == TCon("Person")

    def test_empty_set_polymorphic(self):
        t = infer(C.empty_set())
        assert isinstance(t, TCon) and t.name == "Set"


class TestRuleTyping:
    def test_compatible_rule(self):
        common = check_rule_types(parse_fun("$f o id"), parse_fun("$f"))
        assert isinstance(common, TCon) and common.name == "Fun"

    def test_metavars_shared_across_sides(self):
        # pi1 o <$f, $g> == $f forces $f's type on both sides
        check_rule_types(parse_fun("pi1 o <$f, $g>"), parse_fun("$f"))

    def test_incompatible_rule_rejected(self):
        # a function cannot equal a flattening of itself
        with pytest.raises(TypeInferenceError):
            check_rule_types(parse_fun("flat o $f"), parse_fun("$f"))

    def test_pred_rule(self):
        check_rule_types(parse_pred("Kp(T) & $p"), parse_pred("$p"))

    def test_metavar_sort_typing(self):
        inferencer = Inferencer()
        f_type = inferencer.infer(fun_var("f"))
        assert isinstance(f_type, TCon) and f_type.name == "Fun"
        p_type = inferencer.infer(pred_var("p"))
        assert isinstance(p_type, TCon) and p_type.name == "Pred"
        assert isinstance(inferencer.infer(obj_var("x")), object)
