"""Conformance tests for Table 1: basic KOLA combinator semantics.

Each test implements one semantic equation from the paper's Table 1 and
checks the evaluator against it on concrete values.
"""

import pytest

from repro.core import constructors as C
from repro.core.errors import EvalError
from repro.core.eval import apply_fn, eval_obj
from repro.core.eval import test_pred as check_pred
from repro.core.values import KPair, kset


class TestPrimitiveFunctions:
    def test_id(self):
        # id ! x = x
        assert apply_fn(C.id_(), 42) == 42

    def test_pi1(self):
        # pi1 ! [x, y] = x
        assert apply_fn(C.pi1(), KPair(1, 2)) == 1

    def test_pi2(self):
        assert apply_fn(C.pi2(), KPair(1, 2)) == 2

    def test_pi1_non_pair_error(self):
        with pytest.raises(EvalError, match="pair"):
            apply_fn(C.pi1(), 3)

    def test_schema_prim(self, tiny_db):
        person = next(iter(tiny_db.collection("P")))
        assert apply_fn(C.prim("age"), person, tiny_db) == person.get("age")

    def test_prim_needs_db(self):
        with pytest.raises(EvalError, match="database"):
            apply_fn(C.prim("age"), 3)

    def test_setops(self):
        a, b = kset([1, 2]), kset([2, 3])
        assert apply_fn(C.union(), KPair(a, b)) == kset([1, 2, 3])
        assert apply_fn(C.intersect(), KPair(a, b)) == kset([2])
        assert apply_fn(C.difference(), KPair(a, b)) == kset([1])


class TestPrimitivePredicates:
    def test_eq(self):
        # eq ? [x, y] = (x = y)
        assert check_pred(C.eq(), KPair(3, 3))
        assert not check_pred(C.eq(), KPair(3, 4))

    def test_neq(self):
        assert check_pred(C.neq(), KPair(3, 4))

    def test_comparisons(self):
        assert check_pred(C.lt(), KPair(1, 2))
        assert check_pred(C.leq(), KPair(2, 2))
        assert check_pred(C.gt(), KPair(3, 2))
        assert check_pred(C.geq(), KPair(2, 2))
        assert not check_pred(C.gt(), KPair(2, 2))

    def test_comparison_incomparable(self):
        with pytest.raises(EvalError, match="incomparable"):
            check_pred(C.lt(), KPair(1, "a"))

    def test_in(self):
        # in ? [x, A] = x in A
        assert check_pred(C.isin(), KPair(2, kset([1, 2])))
        assert not check_pred(C.isin(), KPair(5, kset([1, 2])))

    def test_subset(self):
        assert check_pred(C.subset(), KPair(kset([1]), kset([1, 2])))
        assert not check_pred(C.subset(), KPair(kset([3]), kset([1, 2])))


class TestFunctionFormers:
    def test_compose(self):
        # (f o g) ! x = f ! (g ! x)
        term = C.compose(C.pi1(), C.pi2())
        assert apply_fn(term, KPair(0, KPair(7, 8))) == 7

    def test_pair(self):
        # <f, g> ! x = [f ! x, g ! x]
        term = C.pair(C.id_(), C.id_())
        assert apply_fn(term, 5) == KPair(5, 5)

    def test_cross(self):
        # (f x g) ! [x, y] = [f ! x, g ! y]
        term = C.cross(C.const_f(C.lit(1)), C.id_())
        assert apply_fn(term, KPair(9, 8)) == KPair(1, 8)

    def test_const_f(self):
        # Kf(c) ! y = c
        assert apply_fn(C.const_f(C.lit("k")), 123) == "k"

    def test_curry_f(self):
        # Cf(f, x) ! y = f ! [x, y]
        term = C.curry_f(C.pi1(), C.lit(10))
        assert apply_fn(term, 99) == 10
        term2 = C.curry_f(C.pi2(), C.lit(10))
        assert apply_fn(term2, 99) == 99

    def test_cond(self):
        # con(p, f, g) ! x = f!x if p?x else g!x
        term = C.cond(C.const_p(C.true()), C.const_f(C.lit("then")),
                      C.const_f(C.lit("else")))
        assert apply_fn(term, 0) == "then"
        term2 = C.cond(C.const_p(C.false()), C.const_f(C.lit("then")),
                       C.const_f(C.lit("else")))
        assert apply_fn(term2, 0) == "else"


class TestPredicateFormers:
    def test_oplus(self):
        # (p (+) f) ? x = p ? (f ! x)
        term = C.oplus(C.eq(), C.pair(C.id_(), C.const_f(C.lit(3))))
        assert check_pred(term, 3)
        assert not check_pred(term, 4)

    def test_conj_disj(self):
        true_p, false_p = C.const_p(C.true()), C.const_p(C.false())
        assert check_pred(C.conj(true_p, true_p), 0)
        assert not check_pred(C.conj(true_p, false_p), 0)
        assert check_pred(C.disj(false_p, true_p), 0)
        assert not check_pred(C.disj(false_p, false_p), 0)

    def test_inv_is_converse(self):
        # inv(p) ? [x, y] = p ? [y, x]  (the converse reading; DESIGN.md)
        assert check_pred(C.inv(C.gt()), KPair(1, 2))      # 2 > 1
        assert not check_pred(C.inv(C.gt()), KPair(2, 1))

    def test_neg(self):
        assert check_pred(C.neg(C.const_p(C.false())), 0)

    def test_const_p(self):
        # Kp(b) ? y = b
        assert check_pred(C.const_p(C.true()), "anything")
        assert not check_pred(C.const_p(C.false()), "anything")

    def test_curry_p(self):
        # Cp(p, x) ? y = p ? [x, y]
        term = C.curry_p(C.lt(), C.lit(10))
        assert check_pred(term, 20)        # 10 < 20
        assert not check_pred(term, 5)


class TestObjectExpressions:
    def test_lit(self):
        assert eval_obj(C.lit(42)) == 42

    def test_pairobj(self):
        assert eval_obj(C.pairobj(C.lit(1), C.lit(2))) == KPair(1, 2)

    def test_invoke(self):
        assert eval_obj(C.invoke(C.id_(), C.lit(3))) == 3

    def test_test(self):
        assert eval_obj(C.test(C.eq(), C.pairobj(C.lit(1), C.lit(1)))) is True

    def test_setname(self, tiny_db):
        assert eval_obj(C.setname("P"), tiny_db) == tiny_db.collection("P")

    def test_setname_needs_db(self):
        with pytest.raises(EvalError, match="database"):
            eval_obj(C.setname("P"))

    def test_metavar_not_executable(self):
        from repro.core.terms import fun_var, obj_var, pred_var
        with pytest.raises(EvalError, match="metavariable"):
            eval_obj(obj_var("x"))
        with pytest.raises(EvalError, match="metavariable"):
            apply_fn(fun_var("f"), 1)
        with pytest.raises(EvalError, match="metavariable"):
            check_pred(pred_var("p"), 1)

    def test_sort_confusion_rejected(self):
        with pytest.raises(EvalError, match="not a function"):
            apply_fn(C.eq(), KPair(1, 1))
        with pytest.raises(EvalError, match="not a predicate"):
            check_pred(C.id_(), 1)
