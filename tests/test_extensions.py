"""Tests for the Section 6 extension features: the Ranked strategy and
predicate ordering, the semantic-optimization block, the hash equi-join,
and the COKO optimizer-module compiler."""

import pytest

from repro.aqua.eval import aqua_eval
from repro.coko.compiler import (HIDDEN_JOIN_COKO, OptimizerModule,
                                 compile_blocks, compile_coko)
from repro.coko.hidden_join import hidden_join_blocks
from repro.coko.stdblocks import (block_predicate_ordering,
                                  block_semantic_optimization)
from repro.core import constructors as C
from repro.core.errors import RewriteError
from repro.core.eval import eval_obj
from repro.core.parser import parse_fun, parse_obj, parse_pred
from repro.core.pretty import pretty
from repro.optimizer.cost import conjunction_order_cost, predicate_rank
from repro.optimizer.physical import JoinNestPlan, recognize_join_nest
from repro.rewrite.engine import Engine
from repro.rules.preconditions import AnnotationOracle
from repro.translate.aqua_to_kola import translate_query
from repro.workloads.hidden_join import HiddenJoinSpec, hidden_join_family


class TestPredicateRank:
    def test_constants_cheapest(self):
        assert (predicate_rank(C.const_p(C.true()))
                < predicate_rank(parse_pred("lt @ age")))

    def test_membership_expensive(self):
        assert (predicate_rank(parse_pred("in @ <id, Kf({1})>"))
                > predicate_rank(parse_pred("Cp(lt, 3)")))

    def test_loops_worst(self):
        looping = parse_pred("in @ <pi1, iterate(Kp(T), id) o pi2>")
        assert predicate_rank(looping) > predicate_rank(
            parse_pred("in @ <pi1, pi2>"))

    def test_order_cost_prefers_cheap_first(self):
        cheap_first = parse_pred("Cp(lt, 3) & in @ <id, Kf({1})>")
        costly_first = parse_pred("in @ <id, Kf({1})> & Cp(lt, 3)")
        assert (conjunction_order_cost(cheap_first)
                < conjunction_order_cost(costly_first))


class TestPredicateOrderingBlock:
    def test_swaps_expensive_conjunct_back(self, rulebase):
        pred = parse_pred("in @ <pi1, cars o pi2> & Cp(lt, 25) @ age o pi1")
        result = block_predicate_ordering().transform(pred, rulebase)
        assert result == parse_pred(
            "Cp(lt, 25) @ age o pi1 & in @ <pi1, cars o pi2>")

    def test_already_ordered_untouched(self, rulebase):
        pred = parse_pred("Cp(lt, 25) @ age & in @ <id, Kf({1})>")
        assert block_predicate_ordering().transform(pred, rulebase) == pred

    def test_ordering_preserves_meaning(self, rulebase, tiny_db):
        query = parse_obj(
            "iterate(in @ <id, child> & Cp(lt, 40) @ age, id) ! P")
        result = block_predicate_ordering().transform(query, rulebase)
        assert eval_obj(result, tiny_db) == eval_obj(query, tiny_db)

    def test_three_conjuncts_sorted(self, rulebase):
        pred = parse_pred(
            "in @ <id, Kf({1, 2})> & (Kp(T) & Cp(lt, 3))")
        result = block_predicate_ordering().transform(pred, rulebase)
        from repro.optimizer.cost import _flatten_conj
        order = [predicate_rank(p) for p in _flatten_conj(result)]
        assert order == sorted(order)


class TestSemanticBlock:
    def test_inert_without_oracle(self, rulebase):
        term = parse_fun("iterate(Kp(T), oid) o intersect")
        result = block_semantic_optimization().transform(term, rulebase)
        assert result == term

    def test_fires_with_annotation(self, rulebase):
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("oid"))
        term = parse_fun("iterate(Kp(T), oid) o intersect")
        result = block_semantic_optimization().transform(
            term, rulebase, Engine(oracle))
        assert result == parse_fun(
            "intersect o (iterate(Kp(T), oid) >< iterate(Kp(T), oid))")

    def test_inference_through_composition(self, rulebase):
        """injective(oid) ==> injective(oid o id) via the inference
        table; the rule still fires."""
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("oid"))
        term = C.compose(C.iterate(C.const_p(C.true()),
                                   C.compose(C.prim("oid"), C.id_())),
                         C.intersect())
        result = block_semantic_optimization().transform(
            term, rulebase, Engine(oracle))
        assert result.op == "compose"
        assert result.args[0].op == "setop"

    def test_semantically_correct_on_data(self, rulebase, tiny_db):
        """The guarded rewrite is actually sound for an injective
        primitive on real data."""
        tiny_db.schema.register_function(
            "oid2", lambda p: p.oid, "Person", "Int")
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("oid2"))
        term = parse_fun("iterate(Kp(T), oid2) o intersect")
        rewritten = block_semantic_optimization().transform(
            term, rulebase, Engine(oracle))
        persons = list(tiny_db.collection("P"))
        from repro.core.values import KPair, kset
        value = KPair(kset(persons[:5]), kset(persons[3:]))
        from repro.core.eval import apply_fn
        assert (apply_fn(term, value, tiny_db)
                == apply_fn(rewritten, value, tiny_db))


class TestHashEquiJoin:
    def test_recognized(self, rulebase, tiny_db):
        from repro.coko.hidden_join import untangle
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="eq"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        assert plan is not None
        assert plan.eq_keys is not None
        assert plan.membership_fn is None
        assert "HashEquiJoin" in plan.explain()

    def test_executes_correctly(self, rulebase, tiny_db):
        from repro.coko.hidden_join import untangle
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="eq"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        assert plan.execute(tiny_db) == aqua_eval(aqua, tiny_db)

    def test_cross_shape_recognized(self):
        query = parse_obj(
            "nest(pi1, pi2) o <join(eq @ (age >< age), id), pi1> ! [P, P]")
        plan = recognize_join_nest(query)
        assert plan is not None and plan.eq_keys is not None

    def test_same_side_keys_rejected(self):
        # eq @ <age o pi1, year o pi1> reads only the left input: not an
        # equi-join between the two inputs
        query = parse_obj(
            "nest(pi1, pi2) o <join(eq @ <age o pi1, year o pi1>, id),"
            " pi1> ! [P, P]")
        plan = recognize_join_nest(query)
        assert plan is not None and plan.eq_keys is None

    def test_theta_join_stays_nested_loop(self, rulebase):
        from repro.coko.hidden_join import untangle
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="gt"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        assert plan.eq_keys is None and plan.membership_fn is None

    def test_cheaper_estimate_than_nested(self, rulebase, db):
        from repro.coko.hidden_join import untangle
        aqua = hidden_join_family(HiddenJoinSpec(depth=1, predicate="eq"))
        final, _ = untangle(translate_query(aqua), rulebase)
        plan = recognize_join_nest(final)
        nested = JoinNestPlan(**{**plan.__dict__, "eq_keys": None})
        assert plan.cost_estimate(db) < nested.cost_estimate(db)


class TestCokoCompiler:
    def test_compile_hidden_join_program(self, rulebase, queries):
        module = compile_coko(HIDDEN_JOIN_COKO, rulebase, "hidden-join")
        assert module.block_names() == (
            "break-up", "bottom-out", "pull-up-nest", "pull-up-unnest",
            "absorb-join")
        result = module.apply(queries.kg1)
        assert result == queries.kg2

    def test_compiled_equals_builtin_pipeline(self, rulebase, queries):
        module = compile_coko(HIDDEN_JOIN_COKO, rulebase)
        from repro.coko.blocks import run_blocks
        builtin = run_blocks(hidden_join_blocks(), queries.kg1, rulebase)
        assert module.apply(queries.kg1) == builtin

    def test_unknown_rule_fails_at_compile_time(self, rulebase):
        source = """
            TRANSFORMATION broken
            USES no-such-rule
            BEGIN exhaust { no-such-rule } END
        """
        with pytest.raises(RewriteError, match="unknown rule"):
            compile_coko(source, rulebase)

    def test_empty_program_rejected(self, rulebase):
        with pytest.raises(RewriteError, match="no transformations"):
            compile_coko("   ", rulebase)

    def test_stats_accumulate(self, rulebase, queries):
        module = compile_coko(HIDDEN_JOIN_COKO, rulebase)
        module.apply(queries.kg1)
        module.apply(queries.kg1)
        assert module.stats.queries == 2
        assert module.stats.rewrites > 0

    def test_describe(self, rulebase):
        module = compile_blocks("std", hidden_join_blocks(), rulebase)
        text = module.describe()
        assert "break-up" in text and "r17" in text

    def test_oracle_threaded(self, rulebase):
        oracle = AnnotationOracle()
        oracle.declare("injective", C.prim("oid"))
        module = compile_blocks(
            "semantic", [block_semantic_optimization()], rulebase, oracle)
        term = parse_fun("iterate(Kp(T), oid) o intersect")
        assert module.apply(term) != term
